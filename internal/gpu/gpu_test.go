package gpu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegistryComplete(t *testing.T) {
	if len(All()) != 9 {
		t.Fatalf("registry has %d models, want the paper's 9", len(All()))
	}
	for _, m := range All() {
		if m.GV100 <= 0 || m.G1080 <= 0 || m.GV100 <= m.G1080 {
			t.Fatalf("%s: V100 rate must exceed 1080Ti rate (%v vs %v)", m.Name, m.GV100, m.G1080)
		}
		if m.PrepCPUBytes <= 0 || m.PreparedBytes <= 0 {
			t.Fatalf("%s: missing prep calibration", m.Name)
		}
		if m.BatchV100 < m.Batch1080 {
			t.Fatalf("%s: V100 batch smaller than 1080Ti", m.Name)
		}
	}
	if len(ImageModels()) != 7 {
		t.Fatalf("want 7 image models, got %d", len(ImageModels()))
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("resnet50")
	if err != nil || m.Name != "resnet50" {
		t.Fatalf("ByName: %v", err)
	}
	if _, err := ByName("gpt4"); err == nil {
		t.Fatal("expected error")
	}
}

func TestFig1ResNet18Calibration(t *testing.T) {
	// Fig 1 publishes the ResNet18 pipeline on 8xV100 + 24 cores:
	// GPU demand 2283 MB/s, CPU prep (24 cores) 735 MB/s, with GPU-
	// assisted prep 1062 MB/s. Our constants must reproduce those to
	// within ~10%.
	m := MustByName("resnet18")
	const avgItem = 146 * 1024.0 * 1024 * 1024 / 1_281_167 // imagenet-1k
	const mb = 1024.0 * 1024
	gpuDemand := 8 * m.GV100 * avgItem / mb
	if math.Abs(gpuDemand-2283)/2283 > 0.10 {
		t.Fatalf("GPU demand %.0f MB/s, want ~2283", gpuDemand)
	}
	cpuPrep := 24 * m.PrepCPUBytes / mb
	if math.Abs(cpuPrep-735)/735 > 0.10 {
		t.Fatalf("CPU prep %.0f MB/s, want ~735", cpuPrep)
	}
	hybrid := (24*m.PrepCPUBytes + 8*m.PrepGPUBytesV100) / mb
	if math.Abs(hybrid-1062)/1062 > 0.10 {
		t.Fatalf("hybrid prep %.0f MB/s, want ~1062", hybrid)
	}
}

func TestFig4CoreRequirements(t *testing.T) {
	// Fig 4: ResNet50 masks prep with 3-4 cores/GPU; AlexNet needs ~24;
	// ResNet18 ~12. Cores needed = G * avgItem / perCoreRate.
	const avgItem = 146 * 1024.0 * 1024 * 1024 / 1_281_167
	cores := func(name string) float64 {
		m := MustByName(name)
		return m.GV100 * avgItem / m.PrepCPUBytes
	}
	if c := cores("resnet50"); c < 2.5 || c > 5 {
		t.Fatalf("resnet50 needs %.1f cores, want 3-4", c)
	}
	if c := cores("alexnet"); c < 18 || c > 28 {
		t.Fatalf("alexnet needs %.1f cores, want ~24", c)
	}
	if c := cores("resnet18"); c < 8 || c > 14 {
		t.Fatalf("resnet18 needs %.1f cores, want ~12", c)
	}
}

func TestBatchScalingMonotonic(t *testing.T) {
	m := MustByName("mobilenetv2")
	prev := 0.0
	for _, b := range []int{32, 64, 128, 256, 512, 1024} {
		r := m.Rate(V100, b)
		if r <= prev {
			t.Fatalf("rate not increasing at b=%d: %v <= %v", b, r, prev)
		}
		prev = r
	}
	// Rate at reference batch equals the calibrated rate.
	if r := m.Rate(V100, m.BatchV100); math.Abs(r-m.GV100) > 1e-9 {
		t.Fatalf("rate at ref batch %v != %v", r, m.GV100)
	}
}

func TestBatchTime(t *testing.T) {
	m := MustByName("resnet50")
	bt := m.BatchTime(V100, 512, false)
	if math.Abs(bt-512.0/850) > 1e-9 {
		t.Fatalf("batch time %v", bt)
	}
	// GPU prep slows compute-heavy models (Appendix B.2).
	if m.BatchTime(V100, 512, true) <= bt {
		t.Fatal("GPU prep should slow ResNet50")
	}
	// ...but not light models.
	a := MustByName("alexnet")
	if a.BatchTime(V100, 512, true) != a.BatchTime(V100, 512, false) {
		t.Fatal("GPU prep should not slow AlexNet compute")
	}
}

func TestGenerationProperties(t *testing.T) {
	if V100.MemGB() != 32 || GTX1080Ti.MemGB() != 11 {
		t.Fatal("wrong GPU memory sizes (Table 2)")
	}
	if V100.String() != "v100" || GTX1080Ti.String() != "1080ti" {
		t.Fatal("bad generation names")
	}
}

// Property: Rate is positive and bounded by the asymptote for any batch.
func TestRateBoundsProperty(t *testing.T) {
	f := func(bRaw uint16, genRaw bool) bool {
		b := int(bRaw)%2048 + 1
		gen := V100
		if genRaw {
			gen = GTX1080Ti
		}
		for _, m := range All() {
			r := m.Rate(gen, b)
			ref := float64(m.RefBatch(gen))
			asymptote := m.RefRate(gen) * (ref + m.BHalf) / ref
			if r <= 0 || r > asymptote+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
