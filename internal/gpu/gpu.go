// Package gpu models the GPU side of DNN training: per-model minibatch
// ingestion rates for the paper's two GPU generations, batch-size scaling,
// and gradient sizes for data-parallel synchronization.
//
// The data pipeline only observes the GPU as a consumption rate G (Fig 1
// reduces the whole accelerator to "GPU rate"), so a model here is a small
// calibration record. Rates are calibrated so that Fig 1's published
// pipeline numbers are reproduced exactly for ResNet18 (2283 MB/s demand on
// 8 V100s) and Fig 4's cores-per-GPU requirements hold per model; see
// DESIGN.md §5.
package gpu

import "fmt"

// Generation identifies a GPU generation (Table 2's two SKUs).
type Generation int

// Supported GPU generations.
const (
	V100      Generation = iota // 32 GB, tensor cores, mixed precision
	GTX1080Ti                   // 11 GB, full precision
)

// String returns the generation name.
func (g Generation) String() string {
	if g == V100 {
		return "v100"
	}
	return "1080ti"
}

// MemGB returns the device memory in GB (Table 2).
func (g Generation) MemGB() float64 {
	if g == V100 {
		return 32
	}
	return 11
}

// Model is the calibration record for one DNN.
type Model struct {
	Name string
	Task string // "image", "detection", "audio"
	// DefaultDataset names the Table 1 dataset this model trains on.
	DefaultDataset string

	// BatchV100 / Batch1080 are the per-GPU batch sizes from §3.1
	// (512 images on V100 mixed precision; max-fit on 1080Ti).
	BatchV100, Batch1080 int

	// GV100 / G1080 are GPU ingestion rates in samples/s per GPU at the
	// reference batch size (mixed precision on V100, fp32 on 1080Ti).
	GV100, G1080 float64

	// BHalf is the batch size at which throughput halves relative to the
	// asymptote: rate(b) ∝ b/(b+BHalf). Captures Fig 14's batch-size
	// scaling (larger batches amortize per-iteration overhead).
	BHalf float64

	// PrepCPUBytes is the per-physical-core pre-processing throughput in
	// bytes/s with the DALI CPU pipeline (decode dominates, so cost is
	// per byte of raw input).
	PrepCPUBytes float64
	// PrepGPUBytesV100/1080 is the extra prep throughput per GPU when
	// DALI's GPU pipeline (nvJPEG) is enabled.
	PrepGPUBytesV100, PrepGPUBytes1080 float64
	// GPUPrepSlowdown multiplies G when GPU prep is enabled: compute-
	// heavy models lose GPU cycles to decoding (Appendix B.2 finds GPU
	// prep hurts ResNet50/VGG11).
	GPUPrepSlowdown float64
	// GPUPrepMemGB is the extra device memory GPU prep consumes (2-5 GB,
	// Appendix B.2).
	GPUPrepMemGB float64

	// PreparedBytes is the size of one pre-processed sample (the decoded
	// collated tensor staged for the GPU); 5-7x raw size for images
	// (§4.3: pre-processed items are 5–7× larger than raw).
	PreparedBytes float64

	// GradientBytes is the model's gradient/weight payload exchanged per
	// iteration in data-parallel training.
	GradientBytes float64
}

const mib = 1024.0 * 1024.0

// preparedImage is a 224x224x3 fp32 tensor (~588 KiB).
const preparedImage = 224 * 224 * 3 * 4.0

// Registry: the nine models from Table 1. Rates are samples/s per GPU.
var registry = []*Model{
	{
		Name: "shufflenetv2", Task: "image", DefaultDataset: "imagenet-22k",
		BatchV100: 512, Batch1080: 256, GV100: 3600, G1080: 1100, BHalf: 64,
		PrepCPUBytes: 44 * mib, PrepGPUBytesV100: 50 * mib, PrepGPUBytes1080: 40 * mib,
		GPUPrepSlowdown: 1.0, GPUPrepMemGB: 2,
		PreparedBytes: preparedImage, GradientBytes: 9 * mib,
	},
	{
		Name: "alexnet", Task: "image", DefaultDataset: "imagenet-22k",
		BatchV100: 512, Batch1080: 256, GV100: 11000, G1080: 2600, BHalf: 64,
		PrepCPUBytes: 56 * mib, PrepGPUBytesV100: 50 * mib, PrepGPUBytes1080: 40 * mib,
		GPUPrepSlowdown: 1.0, GPUPrepMemGB: 2,
		PreparedBytes: preparedImage, GradientBytes: 240 * mib,
	},
	{
		Name: "resnet18", Task: "image", DefaultDataset: "imagenet-22k",
		BatchV100: 512, Batch1080: 256, GV100: 2400, G1080: 700, BHalf: 64,
		PrepCPUBytes: 28 * mib, PrepGPUBytesV100: 50 * mib, PrepGPUBytes1080: 40 * mib,
		GPUPrepSlowdown: 1.0, GPUPrepMemGB: 2,
		PreparedBytes: preparedImage, GradientBytes: 45 * mib,
	},
	{
		Name: "squeezenet", Task: "image", DefaultDataset: "openimages",
		BatchV100: 512, Batch1080: 256, GV100: 2600, G1080: 800, BHalf: 64,
		PrepCPUBytes: 36 * mib, PrepGPUBytesV100: 50 * mib, PrepGPUBytes1080: 40 * mib,
		GPUPrepSlowdown: 1.0, GPUPrepMemGB: 2,
		PreparedBytes: preparedImage, GradientBytes: 5 * mib,
	},
	{
		Name: "mobilenetv2", Task: "image", DefaultDataset: "openimages",
		BatchV100: 512, Batch1080: 256, GV100: 1500, G1080: 480, BHalf: 96,
		PrepCPUBytes: 30 * mib, PrepGPUBytesV100: 50 * mib, PrepGPUBytes1080: 40 * mib,
		GPUPrepSlowdown: 1.0, GPUPrepMemGB: 2,
		PreparedBytes: preparedImage, GradientBytes: 14 * mib,
	},
	{
		Name: "resnet50", Task: "image", DefaultDataset: "imagenet-1k",
		BatchV100: 512, Batch1080: 128, GV100: 850, G1080: 165, BHalf: 32,
		PrepCPUBytes: 30 * mib, PrepGPUBytesV100: 50 * mib, PrepGPUBytes1080: 40 * mib,
		GPUPrepSlowdown: 0.78, GPUPrepMemGB: 4,
		PreparedBytes: preparedImage, GradientBytes: 98 * mib,
	},
	{
		Name: "vgg11", Task: "image", DefaultDataset: "imagenet-1k",
		BatchV100: 512, Batch1080: 128, GV100: 700, G1080: 140, BHalf: 32,
		PrepCPUBytes: 26 * mib, PrepGPUBytesV100: 50 * mib, PrepGPUBytes1080: 40 * mib,
		GPUPrepSlowdown: 0.75, GPUPrepMemGB: 5,
		PreparedBytes: preparedImage, GradientBytes: 507 * mib,
	},
	{
		Name: "ssd-res18", Task: "detection", DefaultDataset: "openimages-det",
		BatchV100: 128, Batch1080: 64, GV100: 500, G1080: 115, BHalf: 24,
		PrepCPUBytes: 24 * mib, PrepGPUBytesV100: 30 * mib, PrepGPUBytes1080: 24 * mib,
		GPUPrepSlowdown: 0.95, GPUPrepMemGB: 3,
		PreparedBytes: 300 * 300 * 3 * 4, GradientBytes: 60 * mib,
	},
	{
		Name: "audio-m5", Task: "audio", DefaultDataset: "fma",
		BatchV100: 16, Batch1080: 16, GV100: 87, G1080: 35, BHalf: 8,
		// MP3 decode of large tracks; no nvJPEG path for audio.
		PrepCPUBytes: 60 * mib, PrepGPUBytesV100: 0, PrepGPUBytes1080: 0,
		GPUPrepSlowdown: 1.0, GPUPrepMemGB: 0,
		PreparedBytes: 8000 * 4 * 4.0, GradientBytes: 2 * mib,
	},
}

// languageModels are the two language models of §3.1, which the paper
// evaluated and excluded from the stall analysis because they are GPU
// compute-bound: tiny text items make fetch and prep trivially fast relative
// to the model's arithmetic. They are kept out of the main registry (the
// paper's Table 1 lists nine models) but are resolvable by name.
var languageModels = []*Model{
	{
		Name: "bert-large", Task: "text", DefaultDataset: "wiki-bookcorpus",
		BatchV100: 8, Batch1080: 2, GV100: 55, G1080: 9, BHalf: 2,
		// Tokenization cost per byte of raw text.
		PrepCPUBytes: 20 * mib, PrepGPUBytesV100: 0, PrepGPUBytes1080: 0,
		GPUPrepSlowdown: 1.0, GPUPrepMemGB: 0,
		PreparedBytes: 512 * 4, GradientBytes: 1340 * mib,
	},
	{
		Name: "gnmt", Task: "text", DefaultDataset: "wmt16",
		BatchV100: 128, Batch1080: 64, GV100: 360, G1080: 95, BHalf: 24,
		PrepCPUBytes: 20 * mib, PrepGPUBytesV100: 0, PrepGPUBytes1080: 0,
		GPUPrepSlowdown: 1.0, GPUPrepMemGB: 0,
		PreparedBytes: 100 * 4, GradientBytes: 640 * mib,
	},
}

// All returns the Table 1 models (shared slice; do not mutate).
func All() []*Model { return registry }

// LanguageModels returns the §3.1 language models (BERT-Large, GNMT).
func LanguageModels() []*Model { return languageModels }

// ImageModels returns only the seven image-classification models.
func ImageModels() []*Model {
	var out []*Model
	for _, m := range registry {
		if m.Task == "image" {
			out = append(out, m)
		}
	}
	return out
}

// ByName looks up a model by name, including the language models.
func ByName(name string) (*Model, error) {
	for _, m := range registry {
		if m.Name == name {
			return m, nil
		}
	}
	for _, m := range languageModels {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("gpu: unknown model %q", name)
}

// MustByName is ByName that panics on unknown names (for tables/tests).
func MustByName(name string) *Model {
	m, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return m
}

// RefBatch returns the reference per-GPU batch size for gen (§3.1).
func (m *Model) RefBatch(gen Generation) int {
	if gen == V100 {
		return m.BatchV100
	}
	return m.Batch1080
}

// RefRate returns the calibrated samples/s per GPU at the reference batch.
func (m *Model) RefRate(gen Generation) float64 {
	if gen == V100 {
		return m.GV100
	}
	return m.G1080
}

// Rate returns the GPU ingestion rate in samples/s per GPU at batch size b:
// the calibrated reference rate adjusted by the saturating batch-scaling
// curve rate(b) ∝ b/(b+BHalf).
func (m *Model) Rate(gen Generation, b int) float64 {
	ref := float64(m.RefBatch(gen))
	scale := (float64(b) / (float64(b) + m.BHalf)) / (ref / (ref + m.BHalf))
	return m.RefRate(gen) * scale
}

// PrepGPUBytes returns the GPU-prep offload throughput for gen.
func (m *Model) PrepGPUBytes(gen Generation) float64 {
	if gen == V100 {
		return m.PrepGPUBytesV100
	}
	return m.PrepGPUBytes1080
}

// BatchTime returns the seconds the GPU takes to consume one minibatch of
// size b (forward + backward + update).
func (m *Model) BatchTime(gen Generation, b int, gpuPrep bool) float64 {
	r := m.Rate(gen, b)
	if gpuPrep {
		r *= m.GPUPrepSlowdown
	}
	return float64(b) / r
}
