// Package xatomic provides the lock-free float64 accumulator shared by the
// concurrent caches and the prep pool: a CAS loop over math.Float64bits.
// Keeping the pattern in one place means NaN/overflow behaviour is decided
// once, not per call site.
package xatomic

import (
	"math"
	"sync/atomic"
)

// Float64 is an atomic float64 built on a uint64 bit pattern. The zero
// value is 0.0 and ready to use.
type Float64 struct {
	bits atomic.Uint64
}

// Load returns the current value.
func (f *Float64) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Store sets the value.
func (f *Float64) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

// Add atomically adds v and returns the new value.
func (f *Float64) Add(v float64) float64 {
	for {
		old := f.bits.Load()
		next := math.Float64frombits(old) + v
		if f.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return next
		}
	}
}

// TryAdd atomically adds v only if the result would not exceed limit;
// reports whether the add happened. This is the budget-reservation
// primitive: a successful TryAdd can never push the value past limit, at
// any interleaving.
func (f *Float64) TryAdd(v, limit float64) bool {
	for {
		old := f.bits.Load()
		next := math.Float64frombits(old) + v
		if next > limit {
			return false
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return true
		}
	}
}
