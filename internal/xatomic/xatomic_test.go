package xatomic

import (
	"sync"
	"testing"
)

func TestFloat64Basics(t *testing.T) {
	var f Float64
	if f.Load() != 0 {
		t.Fatalf("zero value = %v, want 0", f.Load())
	}
	if got := f.Add(2.5); got != 2.5 {
		t.Fatalf("Add returned %v, want 2.5", got)
	}
	f.Store(-1)
	if f.Load() != -1 {
		t.Fatalf("Store/Load = %v, want -1", f.Load())
	}
}

func TestTryAddBoundary(t *testing.T) {
	var f Float64
	if !f.TryAdd(10, 10) {
		t.Fatal("TryAdd to exactly the limit must succeed")
	}
	if f.TryAdd(0.001, 10) {
		t.Fatal("TryAdd past the limit must fail")
	}
	if f.Load() != 10 {
		t.Fatalf("failed TryAdd mutated the value: %v", f.Load())
	}
	if !f.TryAdd(-4, 10) || f.Load() != 6 {
		t.Fatalf("negative TryAdd (release) failed: %v", f.Load())
	}
}

// TestTryAddNeverExceedsLimit is the reservation invariant under contention
// (run with -race): concurrent TryAdds can never push the value past limit.
func TestTryAddNeverExceedsLimit(t *testing.T) {
	var f Float64
	const limit = 1000.0
	var wg sync.WaitGroup
	var admitted sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			n := 0
			for i := 0; i < 10000; i++ {
				if f.TryAdd(1, limit) {
					n++
				}
			}
			admitted.Store(g, n)
		}(g)
	}
	wg.Wait()
	total := 0
	admitted.Range(func(_, v any) bool { total += v.(int); return true })
	if f.Load() != limit || total != int(limit) {
		t.Fatalf("admitted %d totalling %v, want exactly %v", total, f.Load(), limit)
	}
}
