package datastall

import (
	"context"
	"fmt"
	"time"

	"datastall/internal/experiments"
)

// ExperimentInfo describes one registered paper-reproduction experiment.
type ExperimentInfo struct {
	// ID is the table/figure identifier, e.g. "fig2", "table6".
	ID string
	// Title describes what the experiment measures.
	Title string
	// Paper summarizes the published result it reproduces.
	Paper string
}

// Experiments lists every registered table/figure reproduction plus the
// design-choice ablations, in ID order.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range experiments.List() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title, Paper: e.Paper})
	}
	return out
}

// ExperimentReport is the output of one experiment run.
type ExperimentReport struct {
	ID    string
	Title string
	// Paper is the published result being reproduced.
	Paper string
	// Text is the rendered result table.
	Text string
	// Values exposes the experiment's key metrics by name.
	Values map[string]float64
	// Notes records caveats and deviations.
	Notes string
}

// String renders the report the way the CLIs print it: a "== id: title =="
// header, the paper claim, the result table, and any notes.
func (r *ExperimentReport) String() string {
	s := fmt.Sprintf("== %s: %s ==\npaper: %s\n%s", r.ID, r.Title, r.Paper, r.Text)
	if r.Notes != "" {
		s += "notes: " + r.Notes + "\n"
	}
	return s
}

// ExperimentOptions tunes an experiment run; the zero value uses each
// experiment's fast defaults.
type ExperimentOptions struct {
	// Scale overrides the dataset scale (1.0 = paper-sized datasets;
	// expect long runtimes at full scale).
	Scale float64
	// Epochs per training run (default 3).
	Epochs int
	// Seed for all randomness.
	Seed int64
	// Memo, when non-nil, memoizes spec-driven cases through the
	// content-addressed result cache (see OpenResultCache): cases already
	// simulated — by any earlier run sharing the cache — are replayed
	// byte-identically instead of re-simulated.
	Memo *ResultCache
}

// RunExperiment reproduces one of the paper's tables or figures. ctx
// cancellation propagates into the experiment's simulations, so
// single-experiment runs honor deadlines and SIGINT exactly like suite
// runs.
func RunExperiment(ctx context.Context, id string, opts ExperimentOptions) (*ExperimentReport, error) {
	r, err := experiments.Run(ctx, id, experiments.Options{
		Scale: opts.Scale, Epochs: opts.Epochs, Seed: opts.Seed, Memo: opts.Memo,
	})
	if err != nil {
		return nil, err
	}
	return &ExperimentReport{
		ID: r.ID, Title: r.Title, Paper: r.Paper,
		Text: r.Table.String(), Values: r.Values, Notes: r.Notes,
	}, nil
}

// RunScenario parses and runs a declarative JSON scenario spec — a base job
// plus parameter axes plus derived table columns (see internal/experiments
// Spec and testdata/specs/ for the schema by example). The scenario needs no
// compiled code: `runsuite -spec file.json` is this function behind a flag.
func RunScenario(ctx context.Context, specJSON []byte, opts ExperimentOptions) (*ExperimentReport, error) {
	sp, err := experiments.LoadSpec(specJSON)
	if err != nil {
		return nil, err
	}
	r, err := experiments.RunSpec(ctx, sp, experiments.Options{
		Scale: opts.Scale, Epochs: opts.Epochs, Seed: opts.Seed, Memo: opts.Memo,
	})
	if err != nil {
		return nil, err
	}
	return &ExperimentReport{
		ID: sp.Name, Title: sp.Title, Paper: "user scenario",
		Text: r.Table.String(), Values: r.Values, Notes: r.Notes,
	}, nil
}

// SuiteOptions configures a parallel run of many experiments.
type SuiteOptions struct {
	// IDs selects a subset of the registry; nil runs every experiment.
	IDs []string
	// Scale / Epochs / Seed apply to every experiment, as in
	// ExperimentOptions.
	Scale  float64
	Epochs int
	Seed   int64
	// Parallel bounds the worker pool (<= 0: one worker per CPU).
	Parallel int
	// Timeout, when > 0, bounds the whole suite; experiments not started
	// in time are reported as skipped.
	Timeout time.Duration
	// Progress, when non-nil, is called as each experiment finishes (in
	// completion order, from a single goroutine). Progress reports omit
	// the rendered Text (only the final SuiteReport carries it) so
	// progress ticks don't pay for table formatting.
	Progress func(SuiteExperiment)
	// Memo, when non-nil, memoizes every spec-driven case in the suite
	// through the content-addressed result cache, as in ExperimentOptions.
	Memo *ResultCache
}

// SuiteExperiment is one experiment's outcome within a suite run.
type SuiteExperiment struct {
	// Status is "ok", "error" or "skipped".
	Status string
	// Err is set when Status is "error"; the rest of the suite still ran.
	Err error
	// WallSeconds is the experiment's real (not simulated) runtime.
	WallSeconds float64
	// ExperimentReport carries the experiment output. ID, Title and Paper
	// are always set; Text, Values and Notes only when Status is "ok".
	*ExperimentReport
}

// String renders the outcome like ExperimentReport.String, substituting the
// failure or skip state for the table when the experiment did not complete.
func (e SuiteExperiment) String() string {
	switch e.Status {
	case "error":
		return fmt.Sprintf("== %s: %s ==\npaper: %s\nFAILED: %v\n", e.ID, e.Title, e.Paper, e.Err)
	case "skipped":
		return fmt.Sprintf("== %s: %s ==\npaper: %s\nskipped (suite interrupted before this experiment started)\n",
			e.ID, e.Title, e.Paper)
	}
	return e.ExperimentReport.String()
}

// SuiteReport is a completed suite run, in experiment ID order.
type SuiteReport struct {
	Experiments []SuiteExperiment
	// OK, Failed and Skipped count outcomes.
	OK, Failed, Skipped int
	// Parallel is the worker count used; WallSeconds the real runtime.
	Parallel    int
	WallSeconds float64

	inner *experiments.SuiteResult
}

// Values merges every successful experiment's metrics into one map keyed
// "<experiment id>.<metric>". Deterministic for a given seed, independent of
// Parallel.
func (r *SuiteReport) Values() map[string]float64 { return r.inner.AggregateValues() }

// JSON renders the machine-readable suite report. With includeTiming false
// the bytes are identical across runs and worker counts for a given seed.
func (r *SuiteReport) JSON(includeTiming bool) ([]byte, error) { return r.inner.JSON(includeTiming) }

// JSONWith renders the suite report with optional extras: includeTiming as
// in JSON, includeCases to embed every captured training run (the
// per-case identity + per-epoch stats that internal/query ingests), making
// the saved report queryable offline.
func (r *SuiteReport) JSONWith(includeTiming, includeCases bool) ([]byte, error) {
	return r.inner.JSONWith(includeTiming, includeCases)
}

// Markdown renders the suite as an EXPERIMENTS.md document.
func (r *SuiteReport) Markdown() string { return r.inner.Markdown() }

// RunSuite fans the selected experiments across a bounded worker pool with
// per-experiment error isolation, collecting results in ID order so output
// is reproducible for any worker count. A non-nil error (alongside a still
// complete report) means ctx expired before every experiment started.
func RunSuite(ctx context.Context, opts SuiteOptions) (*SuiteReport, error) {
	s := &experiments.Suite{
		Options:  experiments.Options{Scale: opts.Scale, Epochs: opts.Epochs, Seed: opts.Seed, Memo: opts.Memo},
		Parallel: opts.Parallel,
		Timeout:  opts.Timeout,
	}
	if opts.IDs != nil {
		sel, err := experiments.SelectIDs(opts.IDs)
		if err != nil {
			return nil, err
		}
		s.Experiments = sel
	}
	if opts.Progress != nil {
		s.Progress = func(er *experiments.ExperimentResult) {
			opts.Progress(toSuiteExperiment(er, false))
		}
	}
	res, runErr := s.Run(ctx)
	out := &SuiteReport{
		OK: res.OK, Failed: res.Failed, Skipped: res.Skipped,
		Parallel: res.Parallel, WallSeconds: res.WallSeconds,
		inner: res,
	}
	for _, er := range res.Results {
		out.Experiments = append(out.Experiments, toSuiteExperiment(er, true))
	}
	return out, runErr
}

// toSuiteExperiment converts an orchestrator result; renderText gates the
// (comparatively expensive) table formatting, skipped for progress ticks.
func toSuiteExperiment(er *experiments.ExperimentResult, renderText bool) SuiteExperiment {
	se := SuiteExperiment{
		Status: string(er.Status), Err: er.Err, WallSeconds: er.WallSeconds,
		ExperimentReport: &ExperimentReport{ID: er.ID, Title: er.Title, Paper: er.Paper},
	}
	if er.Report != nil {
		if renderText {
			se.ExperimentReport.Text = er.Report.Table.String()
		}
		se.ExperimentReport.Values = er.Report.Values
		se.ExperimentReport.Notes = er.Report.Notes
	}
	return se
}
