package datastall

import (
	"datastall/internal/experiments"
)

// ExperimentInfo describes one registered paper-reproduction experiment.
type ExperimentInfo struct {
	// ID is the table/figure identifier, e.g. "fig2", "table6".
	ID string
	// Title describes what the experiment measures.
	Title string
	// Paper summarizes the published result it reproduces.
	Paper string
}

// Experiments lists every registered table/figure reproduction plus the
// design-choice ablations, in ID order.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range experiments.List() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title, Paper: e.Paper})
	}
	return out
}

// ExperimentReport is the output of one experiment run.
type ExperimentReport struct {
	ID    string
	Title string
	// Paper is the published result being reproduced.
	Paper string
	// Text is the rendered result table.
	Text string
	// Values exposes the experiment's key metrics by name.
	Values map[string]float64
	// Notes records caveats and deviations.
	Notes string
}

// ExperimentOptions tunes an experiment run; the zero value uses each
// experiment's fast defaults.
type ExperimentOptions struct {
	// Scale overrides the dataset scale (1.0 = paper-sized datasets;
	// expect long runtimes at full scale).
	Scale float64
	// Epochs per training run (default 3).
	Epochs int
	// Seed for all randomness.
	Seed int64
}

// RunExperiment reproduces one of the paper's tables or figures.
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentReport, error) {
	r, err := experiments.Run(id, experiments.Options{
		Scale: opts.Scale, Epochs: opts.Epochs, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &ExperimentReport{
		ID: r.ID, Title: r.Title, Paper: r.Paper,
		Text: r.Table.String(), Values: r.Values, Notes: r.Notes,
	}, nil
}
