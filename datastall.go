// Package datastall is a simulation library for analyzing and mitigating
// data stalls in DNN training, reproducing "Analyzing and Mitigating Data
// Stalls in DNN Training" (VLDB 2021).
//
// It provides:
//
//   - a deterministic discrete-event simulation of the DNN input pipeline
//     (storage, OS page cache, CPU pre-processing, GPUs, network);
//   - CoorDL, the paper's coordinated data loader: the MinIO cache,
//     partitioned caching for distributed jobs, and coordinated prep for
//     concurrent hyper-parameter-search jobs;
//   - DS-Analyzer: differential stall attribution and what-if prediction;
//   - runners for every table and figure in the paper's evaluation.
//
// Quick start (library):
//
//	res, err := datastall.TrainContext(ctx, datastall.TrainConfig{
//		Model:   "resnet18",
//		Dataset: "openimages",
//		Server:  datastall.ServerSSDV100,
//		Loader:  datastall.LoaderCoorDL,
//		CacheFraction: 0.35,
//		Scale:   0.01,
//	})
//
// Every run honors its context: cancellation (SIGINT in the CLIs, a
// deadline in a service) propagates into the simulation and returns
// ctx.Err() promptly, even mid-epoch. For streamed per-epoch progress,
// functional options and typed validation errors, embed the trainer
// package's Job API directly (see README.md, "Embedding the library").
// Declarative scenario sweeps — a base job plus parameter axes, as JSON —
// run via RunScenario or `runsuite -spec file.json`.
//
// Quick start (paper reproduction): RunSuite fans every registered
// table/figure experiment across a bounded worker pool, isolates failures,
// and reassembles results in experiment ID order:
//
//	rep, err := datastall.RunSuite(ctx, datastall.SuiteOptions{Parallel: 8})
//	jsonBytes, _ := rep.JSON(false) // machine-readable report
//
// Command-line entry points (go run ./cmd/<name>):
//
//   - runsuite: the full experiment suite in parallel; -json emits the suite
//     report, -md regenerates EXPERIMENTS.md, -ids selects a subset. CI runs
//     "make suite" (this binary) and uploads the JSON report as an artifact.
//   - stallbench: single experiments, or -run all through the same
//     orchestrator; -bench measures the concurrent loader backend (sharded
//     vs single-mutex cache throughput, pipeline epoch wall time) and
//     writes BENCH_1.json.
//   - dsanalyzer: differential stall profiles and what-if questions for one
//     model, or every model concurrently with -model all.
//   - coordlsim: one training job, epoch by epoch, under a chosen loader.
//
// Build, test, lint and bench via the Makefile ("make all"); CI runs the
// identical targets.
//
// All simulations are bit-deterministic for a given Seed — results are
// byte-identical for any worker count. Scale shrinks the dataset (and cache
// with it) so full experiments run in seconds while every ratio — hit rates,
// stall fractions, speedups — is preserved. The full-suite output is pinned
// by golden_test.go against testdata/golden-suite.json.
//
// Besides the analytic simulation, trainer jobs can run on a concurrent
// backend (trainer.Config.Backend = BackendConcurrent) that executes the
// data-loading path on real goroutines: a bounded-channel fetch->prep
// pipeline per server over lock-striped sharded caches. See README.md for
// the concurrency model and the backend-equivalence property tests.
package datastall

import (
	"context"
	"fmt"

	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/dsanalyzer"
	"datastall/internal/gpu"
	"datastall/internal/loader"
	"datastall/internal/prep"
	"datastall/internal/trainer"
)

// Server names one of the paper's server SKUs (Table 2).
type Server string

// Available server SKUs.
const (
	// ServerSSDV100 is Config-SSD-V100: 8xV100, 24 cores, 500 GiB DRAM,
	// SATA SSD, 40 GbE (like AWS p3.16xlarge).
	ServerSSDV100 Server = "config-ssd-v100"
	// ServerHDD1080Ti is Config-HDD-1080Ti: 8x1080Ti, magnetic storage
	// (like AWS p2.8xlarge with st1).
	ServerHDD1080Ti Server = "config-hdd-1080ti"
	// ServerHighCPUV100 is the Appendix B.1 SKU: 8xV100 with 32 cores /
	// 64 vCPUs.
	ServerHighCPUV100 Server = "highcpu-v100"
)

func (s Server) spec() (cluster.ServerSpec, error) {
	switch s {
	case ServerSSDV100, "":
		return cluster.ConfigSSDV100(), nil
	case ServerHDD1080Ti:
		return cluster.ConfigHDD1080Ti(), nil
	case ServerHighCPUV100:
		return cluster.HighCPUV100(), nil
	}
	return cluster.ServerSpec{}, fmt.Errorf("datastall: unknown server %q", s)
}

// Loader names a data-loading configuration.
type Loader string

// Available loaders.
const (
	// LoaderDALIShuffle is DALI with randomized reads — the paper's
	// strongest baseline and the default.
	LoaderDALIShuffle Loader = "dali-shuffle"
	// LoaderDALISeq is DALI's file-order reader.
	LoaderDALISeq Loader = "dali-seq"
	// LoaderPyTorch is the native PyTorch DataLoader.
	LoaderPyTorch Loader = "pytorch-dl"
	// LoaderCoorDL is the paper's coordinated loader (MinIO cache;
	// partitioned caching when NumServers > 1).
	LoaderCoorDL Loader = "coordl"
)

func (l Loader) kind() (loader.Kind, error) {
	switch l {
	case LoaderDALIShuffle, "":
		return loader.DALIShuffle, nil
	case LoaderDALISeq:
		return loader.DALISeq, nil
	case LoaderPyTorch:
		return loader.PyTorchDL, nil
	case LoaderCoorDL:
		return loader.CoorDL, nil
	}
	return 0, fmt.Errorf("datastall: unknown loader %q", l)
}

// Models returns the nine supported model names (Table 1).
func Models() []string {
	var out []string
	for _, m := range gpu.All() {
		out = append(out, m.Name)
	}
	return out
}

// Datasets returns the supported dataset names (Table 1).
func Datasets() []string {
	var out []string
	for _, d := range dataset.All() {
		out = append(out, d.Name)
	}
	return out
}

// TrainConfig describes one training job.
type TrainConfig struct {
	// Model is one of Models() (e.g. "resnet18").
	Model string
	// Dataset is one of Datasets(); empty selects the model's Table 1
	// dataset.
	Dataset string
	// Server selects the SKU (default ServerSSDV100).
	Server Server
	// Loader selects the data loader (default LoaderDALIShuffle).
	Loader Loader

	// NumServers > 1 runs data-parallel training across servers; with
	// LoaderCoorDL this enables partitioned caching.
	NumServers int
	// GPUs per server (default: all 8).
	GPUs int
	// Batch per GPU (default: the paper's reference batch).
	Batch int
	// Epochs to simulate (default 3; the first is cold-cache warmup).
	Epochs int
	// PrepThreadsPerGPU (default: fair share of the SKU's cores).
	PrepThreadsPerGPU int
	// PyTorchPrep selects the native (Pillow) pre-processing cost model
	// instead of DALI's.
	PyTorchPrep bool

	// CacheFraction sizes the per-server cache as a fraction of the
	// dataset (0 = the SKU's 400 GiB budget).
	CacheFraction float64
	// Scale shrinks the dataset for fast simulation (default 0.01).
	Scale float64
	// Seed drives all randomness (default 1).
	Seed int64
	// TraceDiskIO / TraceCPU collect time series (mapped onto the
	// trainer's DiskTraceObserver / CPUTraceObserver internally).
	TraceDiskIO bool
	TraceCPU    bool
}

func (c TrainConfig) internal() (trainer.Config, error) {
	m, err := gpu.ByName(c.Model)
	if err != nil {
		return trainer.Config{}, err
	}
	dsName := c.Dataset
	if dsName == "" {
		dsName = m.DefaultDataset
	}
	d, err := dataset.ByName(dsName)
	if err != nil {
		return trainer.Config{}, err
	}
	spec, err := c.Server.spec()
	if err != nil {
		return trainer.Config{}, err
	}
	k, err := c.Loader.kind()
	if err != nil {
		return trainer.Config{}, err
	}
	scale := c.Scale
	if scale == 0 {
		scale = 0.01
	}
	sd := d.Scale(scale)
	cfg := trainer.Config{
		Model: m, Dataset: sd, Spec: spec,
		NumServers: c.NumServers, GPUsPerServer: c.GPUs,
		Batch: c.Batch, Epochs: c.Epochs,
		ThreadsPerGPU: c.PrepThreadsPerGPU,
		Loader:        k, Seed: c.Seed,
	}
	if c.PyTorchPrep {
		cfg.Framework = prep.PyTorchNative
	}
	if c.CacheFraction > 0 {
		cfg.CacheBytes = c.CacheFraction * sd.TotalBytes
	} else {
		cfg.CacheBytes = spec.CacheBytes / d.TotalBytes * sd.TotalBytes
		if cfg.CacheBytes > sd.TotalBytes {
			cfg.CacheBytes = sd.TotalBytes
		}
	}
	return cfg, nil
}

// TrainResult reports a finished training job. Times are simulated seconds
// at the configured Scale; ratios (stall fractions, speedups, hit rates) are
// scale-invariant.
type TrainResult struct {
	// EpochSeconds is the steady-state epoch time (first epoch excluded).
	EpochSeconds float64
	// SamplesPerSecond is the steady-state training throughput.
	SamplesPerSecond float64
	// StallFraction is the share of epoch time the GPUs spent stalled on
	// data (the paper's headline metric).
	StallFraction float64
	// CacheHitRate is the steady-state cache hit rate.
	CacheHitRate float64
	// DiskGiBPerEpoch / NetGiBPerEpoch are steady-state I/O volumes.
	DiskGiBPerEpoch float64
	NetGiBPerEpoch  float64
	// Epochs holds per-epoch details, including the warmup epoch.
	Epochs []EpochDetail
	// DiskTrace / CPUTrace are (time, value) series when tracing was on.
	DiskTrace [][2]float64
	CPUTrace  [][2]float64
}

// EpochDetail is one epoch of a TrainResult.
type EpochDetail struct {
	Seconds       float64
	StallFraction float64
	DiskGiB       float64
	HitRate       float64
	Samples       int
}

const gib = 1024.0 * 1024 * 1024

func toResult(r *trainer.Result) *TrainResult {
	out := &TrainResult{
		EpochSeconds:     r.EpochTime,
		SamplesPerSecond: r.Throughput,
		StallFraction:    r.StallFraction,
		CacheHitRate:     r.HitRate,
		DiskGiBPerEpoch:  r.DiskPerEpoch / gib,
		NetGiBPerEpoch:   r.NetPerEpoch / gib,
	}
	for _, e := range r.Epochs {
		hr := 0.0
		if e.Hits+e.Misses > 0 {
			hr = float64(e.Hits) / float64(e.Hits+e.Misses)
		}
		out.Epochs = append(out.Epochs, EpochDetail{
			Seconds: e.Duration, StallFraction: e.StallFraction(),
			DiskGiB: e.DiskBytes / gib, HitRate: hr, Samples: e.Samples,
		})
	}
	if r.DiskTrace != nil {
		for i := range r.DiskTrace.Times {
			out.DiskTrace = append(out.DiskTrace, [2]float64{r.DiskTrace.Times[i], r.DiskTrace.Values[i]})
		}
	}
	if r.CPUTrace != nil {
		for i := range r.CPUTrace.Times {
			out.CPUTrace = append(out.CPUTrace, [2]float64{r.CPUTrace.Times[i], r.CPUTrace.Values[i]})
		}
	}
	return out
}

// Train simulates one training job. It is the legacy blocking form of
// TrainContext.
func Train(c TrainConfig) (*TrainResult, error) {
	return TrainContext(context.Background(), c)
}

// TrainContext simulates one training job under ctx: cancellation (SIGINT
// in the CLIs, a deadline in a service) propagates into the simulation and
// returns ctx.Err() promptly.
func TrainContext(ctx context.Context, c TrainConfig) (*TrainResult, error) {
	cfg, err := c.internal()
	if err != nil {
		return nil, err
	}
	var obs []trainer.Observer
	if c.TraceDiskIO {
		obs = append(obs, trainer.DiskTraceObserver())
	}
	if c.TraceCPU {
		obs = append(obs, trainer.CPUTraceObserver())
	}
	r, err := trainer.RunContext(ctx, cfg, obs...)
	if err != nil {
		return nil, err
	}
	return toResult(r), nil
}

// HPSearchConfig describes concurrent hyper-parameter-search jobs on one
// server (§5.3).
type HPSearchConfig struct {
	// Job is the per-trial training setup (NumServers is ignored).
	Job TrainConfig
	// NumJobs concurrent jobs (default 8) of GPUsPerJob GPUs (default 1).
	NumJobs    int
	GPUsPerJob int
	// Coordinated enables CoorDL's coordinated prep; otherwise jobs run
	// independently (the DALI/PyTorch baseline).
	Coordinated bool
	// StagingGiB bounds the cross-job staging area (default 5).
	StagingGiB float64
}

// HPSearchResult reports a concurrent-jobs run.
type HPSearchResult struct {
	// PerJob holds each job's result.
	PerJob []*TrainResult
	// DiskGiBPerEpoch is aggregate steady-state storage I/O per epoch.
	DiskGiBPerEpoch float64
	// ReadAmplification is disk I/O per epoch over the dataset size; > 1
	// means the dataset is re-read multiple times per epoch (§3.3.1).
	ReadAmplification float64
	// StagingPeakGiB is the coordinated-prep staging high-water mark.
	StagingPeakGiB float64
}

// HPSearch simulates NumJobs concurrent jobs sharing one server. It is the
// legacy blocking form of HPSearchContext.
func HPSearch(c HPSearchConfig) (*HPSearchResult, error) {
	return HPSearchContext(context.Background(), c)
}

// HPSearchContext simulates NumJobs concurrent jobs sharing one server,
// honoring ctx cancellation.
func HPSearchContext(ctx context.Context, c HPSearchConfig) (*HPSearchResult, error) {
	base, err := c.Job.internal()
	if err != nil {
		return nil, err
	}
	if c.NumJobs == 0 {
		c.NumJobs = 8
	}
	if c.GPUsPerJob == 0 {
		c.GPUsPerJob = 1
	}
	cc := trainer.ConcurrentConfig{
		Base: base, NumJobs: c.NumJobs, GPUsPerJob: c.GPUsPerJob,
		Coordinated: c.Coordinated,
	}
	if c.StagingGiB > 0 {
		cc.StagingCapBytes = c.StagingGiB * gib
	}
	r, err := trainer.RunConcurrentContext(ctx, cc)
	if err != nil {
		return nil, err
	}
	out := &HPSearchResult{
		DiskGiBPerEpoch:   r.DiskPerEpoch / gib,
		ReadAmplification: r.ReadAmplification,
		StagingPeakGiB:    r.StagingPeakBytes / gib,
	}
	for _, jr := range r.Jobs {
		out.PerJob = append(out.PerJob, toResult(jr))
	}
	return out, nil
}

// StallProfile is DS-Analyzer's differential profile (§3.2) plus what-if
// prediction handles (Appendix C).
type StallProfile struct {
	// GPURate, PrepRate, FetchRate are the three phases' throughputs in
	// samples/s (G, P, F).
	GPURate, PrepRate, FetchRate float64
	// PrepStallFraction / FetchStallFraction attribute epoch time.
	PrepStallFraction  float64
	FetchStallFraction float64
	// OptimalCacheFraction is the smallest cache that removes the I/O
	// bottleneck.
	OptimalCacheFraction float64

	p *dsanalyzer.Profile
}

// PredictThroughput returns the expected samples/s at cacheFraction.
func (s *StallProfile) PredictThroughput(cacheFraction float64) float64 {
	return s.p.PredictThroughput(cacheFraction)
}

// Bottleneck classifies training at cacheFraction as "gpu", "cpu" or "io".
func (s *StallProfile) Bottleneck(cacheFraction float64) string {
	return s.p.Bottleneck(cacheFraction)
}

// WhatIfGPUFaster predicts throughput with speedFactor-times-faster GPUs.
func (s *StallProfile) WhatIfGPUFaster(cacheFraction, speedFactor float64) float64 {
	return s.p.WhatIfGPUFaster(cacheFraction, speedFactor)
}

// WhatIfMoreCores predicts throughput with coreFactor-times the prep CPUs.
func (s *StallProfile) WhatIfMoreCores(cacheFraction, coreFactor float64) float64 {
	return s.p.WhatIfMoreCores(cacheFraction, coreFactor)
}

// CoresToMaskPrep returns the CPU-core multiplier (relative to the profiled
// configuration) needed for pre-processing to keep up with the GPUs (§3.4).
func (s *StallProfile) CoresToMaskPrep() float64 {
	return s.p.CoresToMaskPrep()
}

// AnalyzeStalls runs DS-Analyzer's three differential phases for the job.
// It is the legacy blocking form of AnalyzeStallsContext.
func AnalyzeStalls(c TrainConfig) (*StallProfile, error) {
	return AnalyzeStallsContext(context.Background(), c)
}

// AnalyzeStallsContext runs DS-Analyzer's three differential phases under
// ctx; cancellation aborts whichever phase is in flight.
func AnalyzeStallsContext(ctx context.Context, c TrainConfig) (*StallProfile, error) {
	cfg, err := c.internal()
	if err != nil {
		return nil, err
	}
	p, err := dsanalyzer.Analyze(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return &StallProfile{
		GPURate: p.G, PrepRate: p.P, FetchRate: p.F,
		PrepStallFraction:    p.PrepStallFrac,
		FetchStallFraction:   p.FetchStallFrac,
		OptimalCacheFraction: p.OptimalCacheFrac(),
		p:                    p,
	}, nil
}
