package datastall_test

import (
	"context"
	"fmt"

	"datastall"
	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/gpu"
	"datastall/internal/loader"
	"datastall/internal/trainer"
)

// ExampleTrainContext demonstrates the core API: the simulation is
// deterministic, so this example's output is stable. The context cancels
// the run mid-epoch when it dies (a SIGINT handler or request deadline in
// real use).
func ExampleTrainContext() {
	r, err := datastall.TrainContext(context.Background(), datastall.TrainConfig{
		Model:         "resnet18",
		Dataset:       "imagenet-1k",
		Loader:        datastall.LoaderCoorDL,
		CacheFraction: 0.35,
		Scale:         0.01,
		Seed:          1,
	})
	if err != nil {
		panic(err)
	}
	// MinIO's guarantee: hit rate equals the capacity ratio exactly.
	fmt.Printf("hit rate %.2f, stalled %v\n", r.CacheHitRate, r.StallFraction > 0.2)
	// Output: hit rate 0.35, stalled true
}

// ExampleAnalyzeStalls shows DS-Analyzer's differential attribution.
func ExampleAnalyzeStalls() {
	p, err := datastall.AnalyzeStalls(datastall.TrainConfig{
		Model:         "bert-large",
		CacheFraction: 0.35,
		Scale:         0.01,
	})
	if err != nil {
		panic(err)
	}
	// §3.1: language models exhibit no data stalls.
	fmt.Printf("bert-large stalled: %v\n", p.FetchStallFraction+p.PrepStallFraction > 0.02)
	// Output: bert-large stalled: false
}

// ExampleJob embeds the trainer directly: functional options, explicit
// typed validation, and per-epoch progress streamed through an Observer
// while the simulation runs — the building blocks for putting this engine
// behind a service.
func ExampleJob() {
	d := dataset.ImageNet1K.Scale(0.01)
	job := trainer.New(gpu.MustByName("resnet18"), d, cluster.ConfigSSDV100(),
		trainer.WithEpochs(2),
		trainer.WithLoader(loader.CoorDL),
		trainer.WithCacheBytes(0.35*d.TotalBytes),
	)
	if err := job.Validate(); err != nil {
		panic(err)
	}
	epochs := 0
	res, err := job.Run(context.Background(), trainer.ObserverFunc(func(ev trainer.Event) {
		if _, ok := ev.(trainer.EpochEnded); ok {
			epochs++
		}
	}))
	if err != nil {
		panic(err)
	}
	hr := float64(res.Epochs[1].Hits) / float64(res.Epochs[1].Hits+res.Epochs[1].Misses)
	fmt.Printf("streamed %d epochs, steady-state hit rate %.2f\n", epochs, hr)
	// Output: streamed 2 epochs, steady-state hit rate 0.35
}
