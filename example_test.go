package datastall_test

import (
	"fmt"

	"datastall"
)

// ExampleTrain demonstrates the core API: the simulation is deterministic,
// so this example's output is stable.
func ExampleTrain() {
	r, err := datastall.Train(datastall.TrainConfig{
		Model:         "resnet18",
		Dataset:       "imagenet-1k",
		Loader:        datastall.LoaderCoorDL,
		CacheFraction: 0.35,
		Scale:         0.01,
		Seed:          1,
	})
	if err != nil {
		panic(err)
	}
	// MinIO's guarantee: hit rate equals the capacity ratio exactly.
	fmt.Printf("hit rate %.2f, stalled %v\n", r.CacheHitRate, r.StallFraction > 0.2)
	// Output: hit rate 0.35, stalled true
}

// ExampleAnalyzeStalls shows DS-Analyzer's differential attribution.
func ExampleAnalyzeStalls() {
	p, err := datastall.AnalyzeStalls(datastall.TrainConfig{
		Model:         "bert-large",
		CacheFraction: 0.35,
		Scale:         0.01,
	})
	if err != nil {
		panic(err)
	}
	// §3.1: language models exhibit no data stalls.
	fmt.Printf("bert-large stalled: %v\n", p.FetchStallFraction+p.PrepStallFraction > 0.02)
	// Output: bert-large stalled: false
}
