// What-if example: use DS-Analyzer to size hardware before buying it
// (§3.4, Appendix C). The profile is measured once; predictions for any
// cache size, GPU speed or core count come from the Eq. 4 model.
//
// The example exits non-zero on any error (and on SIGINT, which cancels the
// profiling run through its context), so CI can use it as a smoke test.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"datastall"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "whatif: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	p, err := datastall.AnalyzeStallsContext(ctx, datastall.TrainConfig{
		Model:         "alexnet",
		Dataset:       "imagenet-1k",
		Server:        datastall.ServerSSDV100,
		CacheFraction: 0.35,
		Scale:         0.02,
	})
	if err != nil {
		return err
	}

	fmt.Println("DS-Analyzer profile: AlexNet / ImageNet-1k / Config-SSD-V100")
	fmt.Printf("  G (GPU) = %.0f  P (prep) = %.0f  F (fetch @35%%) = %.0f samples/s\n",
		p.GPURate, p.PrepRate, p.FetchRate)
	fmt.Printf("  stalls: %.0f%% prep, %.0f%% fetch\n\n",
		p.PrepStallFraction*100, p.FetchStallFraction*100)

	fmt.Println("cache%  predicted samp/s  bottleneck")
	for _, x := range []float64{0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0} {
		fmt.Printf("%5.0f%%  %16.0f  %s\n", x*100, p.PredictThroughput(x), p.Bottleneck(x))
	}
	fmt.Printf("\nrecommended cache: %.0f%% of the dataset — more DRAM beyond this\n",
		p.OptimalCacheFraction*100)
	fmt.Println("buys nothing, because training becomes CPU-bound (Fig 16).")

	fmt.Printf("\nwhat-if 2x faster GPUs at 35%% cache: %.0f samples/s\n",
		p.WhatIfGPUFaster(0.35, 2))
	fmt.Printf("what-if 2x prep CPUs at 35%% cache:  %.0f samples/s\n",
		p.WhatIfMoreCores(0.35, 2))
	fmt.Println("\nif a job is I/O-bound, neither helps — fix the cache or the disk (§3.4).")
	return nil
}
