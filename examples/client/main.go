// Service-client example: submit a scenario to a running stallserved
// instance, stream its per-epoch events live, and print the final result —
// the whole job lifecycle over plain HTTP, no library imports.
//
// Start the service, then run the client:
//
//	go run ./cmd/stallserved -addr :8080
//	go run ./examples/client -addr localhost:8080 -spec testdata/specs/cache-sweep.json
//	go run ./examples/client -addr localhost:8080 -name fig5
//
// -table-only suppresses the live narration and prints just the final
// result table (stable output for scripted byte-comparisons — the same
// table whether the server ran the spec locally or scattered it across a
// worker fleet); -tenant labels the submission for servers enforcing
// per-tenant quotas.
//
// Ctrl-C cancels the submitted job through DELETE before exiting, so an
// interrupted client does not leave its simulation running server-side.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "client: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "localhost:8080", "stallserved address")
	specFile := flag.String("spec", "", "scenario spec JSON file to submit")
	specName := flag.String("name", "", "built-in spec to run by name (see GET /v1/specs)")
	tableOnly := flag.Bool("table-only", false, "print only the final result table (no live event narration)")
	tenant := flag.String("tenant", "", "X-Tenant header value for quota-enforcing servers")
	flag.Parse()
	base := "http://" + *addr

	var body []byte
	switch {
	case *specFile != "" && *specName == "":
		raw, err := os.ReadFile(*specFile)
		if err != nil {
			return err
		}
		body = []byte(`{"spec": ` + string(raw) + `}`)
	case *specName != "" && *specFile == "":
		b, _ := json.Marshal(map[string]string{"spec_name": *specName})
		body = b
	default:
		return fmt.Errorf("pass exactly one of -spec or -name")
	}

	// Submit.
	sreq, err := http.NewRequest("POST", base+"/v1/jobs", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	sreq.Header.Set("Content-Type", "application/json")
	if *tenant != "" {
		sreq.Header.Set("X-Tenant", *tenant)
	}
	resp, err := http.DefaultClient.Do(sreq)
	if err != nil {
		return err
	}
	rb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: %s: %s", resp.Status, rb)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rb, &sub); err != nil {
		return err
	}
	if !*tableOnly {
		fmt.Printf("submitted %s\n", sub.ID)
	}

	// On Ctrl-C the context cancels, the stream read below fails, and the
	// cleanup after the loop DELETEs the job synchronously — so the
	// process never exits with its simulation still running server-side.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Stream events until the job_done marker.
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/jobs/"+sub.ID+"/events", nil)
	if err != nil {
		return err
	}
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Type   string `json:"type"`
			Status string `json:"status"`
			Epoch  *int   `json:"epoch"`
			Text   string `json:"text"`
			Index  int    `json:"index"`
			Total  int    `json:"total"`
			Error  string `json:"error"`
			Stats  *struct {
				Duration  float64 `json:"Duration"`
				StallTime float64 `json:"StallTime"`
			} `json:"stats"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("bad stream line %q: %v", sc.Text(), err)
		}
		if *tableOnly {
			continue
		}
		switch ev.Type {
		case "status":
			fmt.Printf("  job is %s\n", ev.Status)
		case "case_started":
			fmt.Printf("  [%d/%d] %s\n", ev.Index+1, ev.Total, ev.Text)
		case "epoch_ended":
			if ev.Stats != nil && ev.Epoch != nil {
				stallPct := 0.0
				if ev.Stats.Duration > 0 {
					stallPct = 100 * ev.Stats.StallTime / ev.Stats.Duration
				}
				fmt.Printf("    epoch %d: %.2fs, stall %.1f%%\n", *ev.Epoch, ev.Stats.Duration, stallPct)
			}
		case "job_done":
			fmt.Printf("  job %s", ev.Status)
			if ev.Error != "" {
				fmt.Printf(" (%s)", ev.Error)
			}
			fmt.Println()
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			// Interrupted: cancel the job server-side before exiting, and
			// wait for the DELETE to land.
			req, derr := http.NewRequest("DELETE", base+"/v1/jobs/"+sub.ID, nil)
			if derr == nil {
				if resp, derr := http.DefaultClient.Do(req); derr == nil {
					resp.Body.Close()
					fmt.Printf("interrupted: cancelled %s server-side\n", sub.ID)
				}
			}
			return fmt.Errorf("interrupted: %w", ctx.Err())
		}
		return err
	}

	// Fetch the final record and print the result table.
	final, err := http.Get(base + "/v1/jobs/" + sub.ID)
	if err != nil {
		return err
	}
	defer final.Body.Close()
	var rec struct {
		Status string `json:"status"`
		Report *struct {
			Title string `json:"title"`
			Table *struct {
				Columns []string   `json:"columns"`
				Rows    [][]string `json:"rows"`
			} `json:"table"`
		} `json:"report"`
	}
	if err := json.NewDecoder(final.Body).Decode(&rec); err != nil {
		return err
	}
	if rec.Status != "completed" || rec.Report == nil || rec.Report.Table == nil {
		return fmt.Errorf("job ended %s", rec.Status)
	}
	if !*tableOnly {
		fmt.Println()
	}
	fmt.Printf("%s\n", rec.Report.Title)
	fmt.Println(strings.Join(rec.Report.Table.Columns, " | "))
	for _, row := range rec.Report.Table.Rows {
		fmt.Println(strings.Join(row, " | "))
	}
	return nil
}
