// Distributed-training example: AlexNet on OpenImages across two HDD
// servers (§4.2, Fig 9b). Each server can cache 65% of the dataset, so the
// two servers together hold all of it — but without coordination each
// server's cache only helps with its own random epoch shard, and the job is
// disk-bound. CoorDL's partitioned caching shards the dataset across the
// servers' MinIO caches and serves local misses from remote DRAM over
// commodity TCP, eliminating storage I/O after the first epoch.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"datastall"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	base := datastall.TrainConfig{
		Model:         "alexnet",
		Dataset:       "openimages",
		Server:        datastall.ServerHDD1080Ti,
		NumServers:    2,
		Batch:         128,
		CacheFraction: 0.65,
		Scale:         0.004,
	}

	fmt.Println("AlexNet/OpenImages on 2x Config-HDD-1080Ti (16 GPUs)")
	var times [2]float64
	for i, l := range []datastall.Loader{datastall.LoaderDALIShuffle, datastall.LoaderCoorDL} {
		cfg := base
		cfg.Loader = l
		r, err := datastall.TrainContext(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		times[i] = r.EpochSeconds
		fmt.Printf("\n%s:\n", l)
		for e, ep := range r.Epochs {
			fmt.Printf("  epoch %d: %8.2fs  stall %5.1f%%  disk %6.2f GiB\n",
				e, ep.Seconds, ep.StallFraction*100, ep.DiskGiB)
		}
		fmt.Printf("  network: %.2f GiB/epoch\n", r.NetGiBPerEpoch)
	}

	fmt.Printf("\npartitioned caching speedup: %.1fx — the dataset is fetched\n", times[0]/times[1])
	fmt.Println("from storage exactly once for the entire distributed job.")
}
