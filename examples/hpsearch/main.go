// HP-search example: eight concurrent 1-GPU hyper-parameter-search jobs on
// one server, with and without CoorDL's coordinated prep (§4.3, Fig 9d).
// Without coordination every job fetches and pre-processes the full dataset
// itself, amplifying storage reads ~7x; with coordination the dataset is
// fetched and prepped exactly once per epoch and shared through the staging
// area.
//
// The example exits non-zero on any error (and on SIGINT, which cancels the
// in-flight simulation through its context), so CI can use it as a smoke
// test.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"datastall"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "hpsearch: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	job := datastall.TrainConfig{
		Model:         "alexnet",
		Dataset:       "openimages",
		Server:        datastall.ServerSSDV100,
		CacheFraction: 0.65,
		Batch:         128,
		Scale:         0.003,
	}

	baseline, err := datastall.HPSearchContext(ctx, datastall.HPSearchConfig{
		Job: job, NumJobs: 8,
	})
	if err != nil {
		return err
	}
	coordinated, err := datastall.HPSearchContext(ctx, datastall.HPSearchConfig{
		Job: job, NumJobs: 8, Coordinated: true,
	})
	if err != nil {
		return err
	}

	fmt.Println("8 concurrent AlexNet HP-search jobs, Config-SSD-V100")
	fmt.Printf("%-22s %14s %16s %10s\n", "", "per-job s/epoch", "disk GiB/epoch", "read amp")
	fmt.Printf("%-22s %14.2f %16.2f %9.2fx\n", "independent (DALI)",
		baseline.PerJob[0].EpochSeconds, baseline.DiskGiBPerEpoch, baseline.ReadAmplification)
	fmt.Printf("%-22s %14.2f %16.2f %9.2fx\n", "coordinated (CoorDL)",
		coordinated.PerJob[0].EpochSeconds, coordinated.DiskGiBPerEpoch, coordinated.ReadAmplification)

	speedup := baseline.PerJob[0].EpochSeconds / coordinated.PerJob[0].EpochSeconds
	fmt.Printf("\ncoordinated prep speeds up every job by %.2fx while staging\n", speedup)
	fmt.Printf("peaks at %.2f GiB of shared memory (cap 5 GiB, §5.5).\n",
		coordinated.StagingPeakGiB)
	return nil
}
