// Embedding example: drive the simulation engine directly through the
// context-aware Job API — functional options, typed validation errors,
// streamed progress events, and a declarative scenario spec — instead of
// the high-level datastall wrappers. This is the shape a service embedding
// this library takes: build a job from a request, validate it up front,
// run it under the request's context, and stream progress to the client.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"datastall/internal/cluster"
	"datastall/internal/dataset"
	"datastall/internal/experiments"
	"datastall/internal/gpu"
	"datastall/internal/loader"
	"datastall/internal/trainer"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "embed: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context) error {
	d := dataset.ImageNet1K.Scale(0.01)

	// 1. Build a job with functional options. Validation is explicit and
	//    typed: errors.Is picks out the failure class, *FieldError the
	//    offending field — no silent zero-value defaulting surprises.
	job := trainer.New(gpu.MustByName("resnet18"), d, cluster.ConfigSSDV100(),
		trainer.WithEpochs(3),
		trainer.WithLoader(loader.CoorDL),
		trainer.WithCacheBytes(0.35*d.TotalBytes),
		trainer.WithSeed(1),
	)
	if err := job.Validate(); err != nil {
		var fe *trainer.FieldError
		if errors.As(err, &fe) {
			return fmt.Errorf("bad job config, field %s: %w", fe.Field, err)
		}
		return err
	}

	// 2. Run under a context (SIGINT cancels mid-epoch) with observers
	//    streaming typed progress events as the simulation advances.
	fmt.Println("streaming a CoorDL training job:")
	res, err := job.Run(ctx, trainer.ObserverFunc(func(ev trainer.Event) {
		switch e := ev.(type) {
		case trainer.EpochEnded:
			fmt.Printf("  epoch %d: %6.2fs simulated, stall %4.1f%%, cache %4.0f MiB resident\n",
				e.Epoch, e.Stats.Duration, 100*e.Stats.StallFraction(),
				e.CacheUsedBytes/(1024*1024))
		}
	}))
	if err != nil {
		return err
	}
	fmt.Printf("steady state: %.2f s/epoch at %.1f%% cache hits\n\n",
		res.EpochTime, 100*res.HitRate)

	// 3. Or describe a whole sweep as data: the same declarative Spec
	//    format `runsuite -spec` loads from JSON.
	sweep := &experiments.Spec{
		Name:      "embed-demo",
		Title:     "cache-size sweep (ResNet18/ImageNet-1k, CoorDL)",
		RowHeader: []string{"cache frac"},
		Base: experiments.JobSpec{
			Model: "resnet18", Dataset: "imagenet-1k",
			Loader: "coordl", Scale: 0.01,
		},
		Rows: experiments.Axis{
			Param:  "cache_fraction",
			Values: []json.RawMessage{[]byte("0.2"), []byte("0.5"), []byte("0.8")},
		},
		Columns: []experiments.Column{
			{Label: "epoch s", Metric: "epoch_s"},
			{Label: "stall %", Metric: "stall_pct"},
			{Label: "hit %", Metric: "hit_pct"},
		},
	}
	rep, err := experiments.RunSpec(ctx, sweep, experiments.Options{})
	if err != nil {
		return err
	}
	fmt.Print(rep.Table.String())
	return nil
}
