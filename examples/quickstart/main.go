// Quickstart: measure data stalls for one model and see how much CoorDL's
// MinIO cache recovers. This is the paper's single-server story (Fig 2 /
// Fig 9a) in ~30 lines of API.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"datastall"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// ShuffleNet on OpenImages with 65% of the dataset cacheable — the
	// configuration of the paper's Table 6.
	base := datastall.TrainConfig{
		Model:         "shufflenetv2",
		Dataset:       "openimages",
		Server:        datastall.ServerSSDV100,
		CacheFraction: 0.65,
		Scale:         0.005, // shrink the 645 GB dataset for a fast demo
	}

	fmt.Println("loader          epoch(s)  stall%  hit%  disk GiB/epoch")
	for _, l := range []datastall.Loader{
		datastall.LoaderDALISeq,
		datastall.LoaderDALIShuffle,
		datastall.LoaderCoorDL,
	} {
		cfg := base
		cfg.Loader = l
		r, err := datastall.TrainContext(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %8.2f  %5.1f  %4.1f  %6.2f\n",
			l, r.EpochSeconds, r.StallFraction*100, r.CacheHitRate*100,
			r.DiskGiBPerEpoch)
	}

	fmt.Println("\nThe page-cache loaders thrash (hit rate below the 65% capacity")
	fmt.Println("ratio); CoorDL's MinIO cache hits exactly 65% and reads the")
	fmt.Println("thrashing-free minimum from storage.")
}
