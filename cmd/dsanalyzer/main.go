// Command dsanalyzer profiles data stalls for a (model, dataset, server)
// combination using the paper's differential method (§3.2) and answers
// what-if questions (Appendix C):
//
//	dsanalyzer -model resnet18 -dataset imagenet-1k -cache 0.35
//	dsanalyzer -model alexnet -whatif-gpu 2 -whatif-cores 2
//	dsanalyzer -model all -parallel 8
//
// With -model all every supported model is profiled concurrently through the
// shared suite orchestrator and rendered as one table, in model order.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"datastall"
	"datastall/internal/experiments"
	"datastall/internal/stats"
)

func main() {
	model := flag.String("model", "resnet18", "model name (see -models), or 'all' to profile every model")
	ds := flag.String("dataset", "", "dataset name (default: the model's Table 1 dataset)")
	server := flag.String("server", string(datastall.ServerSSDV100), "server SKU")
	cache := flag.Float64("cache", 0.35, "cache size as a fraction of the dataset")
	scale := flag.Float64("scale", 0.01, "dataset scale for the simulation")
	parallel := flag.Int("parallel", 0, "workers for -model all (0 = one per CPU)")
	whatifGPU := flag.Float64("whatif-gpu", 0, "predict throughput with N-times faster GPUs")
	whatifCores := flag.Float64("whatif-cores", 0, "predict throughput with N-times the prep CPUs")
	models := flag.Bool("models", false, "list models and datasets")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *models {
		fmt.Println("models: ", datastall.Models())
		fmt.Println("datasets:", datastall.Datasets())
		return
	}
	if *model == "all" {
		if *whatifGPU > 0 || *whatifCores > 0 {
			fmt.Fprintln(os.Stderr, "dsanalyzer: -whatif-gpu/-whatif-cores apply to a single model; ignored with -model all")
		}
		profileAll(ctx, *ds, datastall.Server(*server), *cache, *scale, *parallel)
		return
	}

	p, err := datastall.AnalyzeStallsContext(ctx, datastall.TrainConfig{
		Model: *model, Dataset: *ds, Server: datastall.Server(*server),
		CacheFraction: *cache, Scale: *scale,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsanalyzer: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("DS-Analyzer profile: %s on %s (cache %.0f%%)\n", *model, *server, *cache*100)
	fmt.Printf("  phase 1  GPU ingestion rate (G): %8.0f samples/s\n", p.GPURate)
	fmt.Printf("  phase 2  prep-bound rate    (P): %8.0f samples/s\n", p.PrepRate)
	fmt.Printf("  phase 3  actual rate        (F): %8.0f samples/s\n", p.FetchRate)
	fmt.Printf("  prep stall : %5.1f%% of epoch time\n", p.PrepStallFraction*100)
	fmt.Printf("  fetch stall: %5.1f%% of epoch time\n", p.FetchStallFraction*100)
	fmt.Printf("  bottleneck at this cache size: %s\n", p.Bottleneck(*cache))
	fmt.Printf("  recommended cache: %.0f%% of the dataset\n", p.OptimalCacheFraction*100)
	if f := p.CoresToMaskPrep(); f > 1.01 {
		fmt.Printf("  prep needs %.1fx the configured CPU cores to keep up with the GPUs\n", f)
	}

	if *whatifGPU > 0 {
		fmt.Printf("  what-if %gx faster GPUs:  %8.0f samples/s\n",
			*whatifGPU, p.WhatIfGPUFaster(*cache, *whatifGPU))
	}
	if *whatifCores > 0 {
		fmt.Printf("  what-if %gx prep CPUs:    %8.0f samples/s\n",
			*whatifCores, p.WhatIfMoreCores(*cache, *whatifCores))
	}
}

// profileAll profiles every model through the suite orchestrator: one
// ad-hoc experiment per model, fanned across the worker pool, merged into a
// single table in model order. ds overrides each model's default dataset
// when non-empty.
func profileAll(ctx context.Context, ds string, server datastall.Server, cache, scale float64, parallel int) {
	var exps []*experiments.Experiment
	for _, name := range datastall.Models() {
		name := name
		exps = append(exps, &experiments.Experiment{
			ID:    name,
			Title: "DS-Analyzer profile for " + name,
			Paper: "differential stall attribution (§3.2)",
			Run: func(ctx context.Context, o experiments.Options) (*experiments.Report, error) {
				p, err := datastall.AnalyzeStallsContext(ctx, datastall.TrainConfig{
					Model: name, Dataset: ds, Server: server,
					CacheFraction: cache, Scale: scale, Seed: o.Seed,
				})
				if err != nil {
					return nil, err
				}
				r := &experiments.Report{Table: &stats.Table{}}
				r.Values = map[string]float64{
					"gpu_rate":      p.GPURate,
					"prep_rate":     p.PrepRate,
					"fetch_rate":    p.FetchRate,
					"prep_stall":    p.PrepStallFraction * 100,
					"fetch_stall":   p.FetchStallFraction * 100,
					"optimal_cache": p.OptimalCacheFraction * 100,
				}
				return r, nil
			},
		})
	}

	suite := &experiments.Suite{
		Experiments: exps,
		Parallel:    parallel,
		Progress: func(er *experiments.ExperimentResult) {
			fmt.Fprintf(os.Stderr, "dsanalyzer: %-14s %-6s (%.2fs)\n", er.ID, er.Status, er.WallSeconds)
		},
	}
	res, err := suite.Run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsanalyzer: %v\n", err)
		os.Exit(1)
	}

	t := &stats.Table{
		Title: fmt.Sprintf("DS-Analyzer profiles on %s (cache %.0f%%)", server, cache*100),
		Columns: []string{"model", "G samples/s", "P samples/s", "F samples/s",
			"prep stall %", "fetch stall %", "optimal cache %"},
	}
	byID := make(map[string]*experiments.ExperimentResult, len(res.Results))
	for _, er := range res.Results {
		byID[er.ID] = er
	}
	failed := 0
	// Emit rows in Models() (paper Table 1) order, not the suite's
	// alphabetical ID order.
	for _, name := range datastall.Models() {
		er := byID[name]
		if er.Status != experiments.StatusOK {
			fmt.Fprintf(os.Stderr, "dsanalyzer: %s: %v\n", er.ID, er.Err)
			failed++
			continue
		}
		v := er.Report.Values
		t.AddRow(er.ID, v["gpu_rate"], v["prep_rate"], v["fetch_rate"],
			v["prep_stall"], v["fetch_stall"], v["optimal_cache"])
	}
	fmt.Print(t.String())
	if failed > 0 {
		os.Exit(1)
	}
}
