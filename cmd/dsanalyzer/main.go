// Command dsanalyzer profiles data stalls for a (model, dataset, server)
// combination using the paper's differential method (§3.2) and answers
// what-if questions (Appendix C):
//
//	dsanalyzer -model resnet18 -dataset imagenet-1k -cache 0.35
//	dsanalyzer -model alexnet -whatif-gpu 2 -whatif-cores 2
package main

import (
	"flag"
	"fmt"
	"os"

	"datastall"
)

func main() {
	model := flag.String("model", "resnet18", "model name (see -models)")
	ds := flag.String("dataset", "", "dataset name (default: the model's Table 1 dataset)")
	server := flag.String("server", string(datastall.ServerSSDV100), "server SKU")
	cache := flag.Float64("cache", 0.35, "cache size as a fraction of the dataset")
	scale := flag.Float64("scale", 0.01, "dataset scale for the simulation")
	whatifGPU := flag.Float64("whatif-gpu", 0, "predict throughput with N-times faster GPUs")
	whatifCores := flag.Float64("whatif-cores", 0, "predict throughput with N-times the prep CPUs")
	models := flag.Bool("models", false, "list models and datasets")
	flag.Parse()

	if *models {
		fmt.Println("models: ", datastall.Models())
		fmt.Println("datasets:", datastall.Datasets())
		return
	}

	p, err := datastall.AnalyzeStalls(datastall.TrainConfig{
		Model: *model, Dataset: *ds, Server: datastall.Server(*server),
		CacheFraction: *cache, Scale: *scale,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsanalyzer: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("DS-Analyzer profile: %s on %s (cache %.0f%%)\n", *model, *server, *cache*100)
	fmt.Printf("  phase 1  GPU ingestion rate (G): %8.0f samples/s\n", p.GPURate)
	fmt.Printf("  phase 2  prep-bound rate    (P): %8.0f samples/s\n", p.PrepRate)
	fmt.Printf("  phase 3  actual rate        (F): %8.0f samples/s\n", p.FetchRate)
	fmt.Printf("  prep stall : %5.1f%% of epoch time\n", p.PrepStallFraction*100)
	fmt.Printf("  fetch stall: %5.1f%% of epoch time\n", p.FetchStallFraction*100)
	fmt.Printf("  bottleneck at this cache size: %s\n", p.Bottleneck(*cache))
	fmt.Printf("  recommended cache: %.0f%% of the dataset\n", p.OptimalCacheFraction*100)
	if f := p.CoresToMaskPrep(); f > 1.01 {
		fmt.Printf("  prep needs %.1fx the configured CPU cores to keep up with the GPUs\n", f)
	}

	if *whatifGPU > 0 {
		fmt.Printf("  what-if %gx faster GPUs:  %8.0f samples/s\n",
			*whatifGPU, p.WhatIfGPUFaster(*cache, *whatifGPU))
	}
	if *whatifCores > 0 {
		fmt.Printf("  what-if %gx prep CPUs:    %8.0f samples/s\n",
			*whatifCores, p.WhatIfMoreCores(*cache, *whatifCores))
	}
}
