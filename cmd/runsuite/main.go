// Command runsuite runs the full experiment suite (or a subset) across a
// bounded worker pool and emits paper-style tables, a machine-readable JSON
// report, or EXPERIMENTS.md:
//
//	runsuite                         # every experiment, one worker per CPU
//	runsuite -ids fig2,fig5,table6   # a subset
//	runsuite -parallel 8 -json > suite.json
//	runsuite -md EXPERIMENTS.md      # regenerate the experiments index
//	runsuite -json -md EXPERIMENTS.md > suite.json   # both from one run
//	runsuite -spec testdata/specs/cache-sweep.json   # a user scenario
//
// Results are collected concurrently but emitted in experiment ID order, so
// for a given -seed the output is byte-identical for any -parallel (add
// -timings to include wall-clock data in the JSON report). One failing
// experiment is reported without aborting the rest; the exit status is
// non-zero if any experiment failed or was skipped on -timeout.
//
// -spec runs a declarative scenario file — a JSON sweep description (base
// job + parameter axes + derived columns) that exists nowhere in compiled
// code — through the same machinery as the registry's sweep figures; add
// -progress to stream per-epoch events of every underlying training run to
// stderr. SIGINT cancels whatever is running (suite or scenario) cleanly
// through its context.
//
// -query runs a JSON relational query (internal/query) over the captured
// training runs and streams the result as NDJSON on stdout:
//
//	runsuite -spec spec.json -query q.json     # query a just-ran scenario
//	runsuite -ids fig18 -query q.json          # query a just-ran suite subset
//	runsuite -json -cases > suite.json         # save a queryable report ...
//	runsuite -report suite.json -query q.json  # ... and query it offline
//
// With -query, stdout carries only the NDJSON rows (tables are skipped), so
// the output pipes straight into jq or diff.
//
// -memo points both paths at a persisted content-addressed result cache
// (the same on-disk layout `stallserved -memo` serves from): every
// spec-driven case already simulated — in an earlier run, by the daemon,
// or by an overlapping sweep — is replayed byte-identically instead of
// re-simulated, making repeated and overlapping sweeps sublinear:
//
//	runsuite -ids fig5,fig9a,fig18 -memo ./memocache   # cold: simulates
//	runsuite -ids fig5,fig9a,fig18 -memo ./memocache   # warm: replays
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"datastall"
	"datastall/internal/experiments"
	"datastall/internal/obs"
	"datastall/internal/query"
	"datastall/internal/trainer"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	ids := flag.String("ids", "", "comma-separated experiment ids (default: all)")
	scale := flag.Float64("scale", 0, "dataset scale (0 = per-experiment default)")
	epochs := flag.Int("epochs", 0, "epochs per training run (0 = default 3)")
	seed := flag.Int64("seed", 0, "simulation seed (0 = default 1)")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = one per CPU)")
	jsonOut := flag.Bool("json", false, "emit the JSON suite report on stdout")
	timings := flag.Bool("timings", false, "include wall-clock timings in the JSON report (breaks byte-for-byte reproducibility)")
	mdOut := flag.String("md", "", "write the suite as markdown (EXPERIMENTS.md) to this file")
	timeout := flag.Duration("timeout", 0, "overall suite deadline, e.g. 10m (0 = none)")
	quiet := flag.Bool("q", false, "suppress per-experiment progress on stderr")
	specFile := flag.String("spec", "", "run a declarative JSON scenario spec from this file")
	progress := flag.Bool("progress", false, "with -spec: stream per-epoch training progress to stderr")
	queryFile := flag.String("query", "", "run a JSON query over the captured training runs; NDJSON on stdout")
	reportFile := flag.String("report", "", "with -query: query a saved suite report (written with -json -cases) instead of running anything")
	withCases := flag.Bool("cases", false, "with -json: embed the per-case capture, making the report queryable via -report")
	memoDir := flag.String("memo", "", "content-addressed result cache directory (shared with stallserved -memo): cases already simulated are replayed byte-identically instead of re-run (empty = off)")
	memoMax := flag.Int64("memo-max-bytes", 0, "memo cache budget in bytes, enforced on disk and in memory, at insert and at open (0 = 256 MiB)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file of the run to this path (viewable in Perfetto / chrome://tracing)")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *list {
		fmt.Printf("%-18s %s\n", "ID", "TITLE")
		for _, e := range datastall.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}
	// -query claims stdout for NDJSON; -json claims it for the report. The
	// combination would interleave two formats, so refuse it (save the
	// report with -json -cases first, then -report it).
	if *queryFile != "" && *jsonOut {
		fmt.Fprintln(os.Stderr, "runsuite: -query and -json both write stdout; run them separately (-json -cases saves a -report-able file)")
		os.Exit(2)
	}
	if *withCases && !*jsonOut {
		fmt.Fprintln(os.Stderr, "runsuite: -cases only applies to the -json report")
		os.Exit(2)
	}
	if *reportFile != "" {
		if *queryFile == "" {
			fmt.Fprintln(os.Stderr, "runsuite: -report requires -query (it selects what to query, not what to run)")
			os.Exit(2)
		}
		if *specFile != "" {
			fmt.Fprintln(os.Stderr, "runsuite: -report and -spec are two different case sources; pick one")
			os.Exit(2)
		}
		os.Exit(queryReportFile(ctx, *reportFile, *queryFile))
	}
	// The memo cache serves both execution paths (-spec and the suite);
	// the summary line tells the user how much the cache actually saved.
	var cache *datastall.ResultCache
	if *memoDir != "" {
		c, err := datastall.OpenResultCache(*memoDir, *memoMax)
		if err != nil {
			fmt.Fprintf(os.Stderr, "runsuite: %v\n", err)
			os.Exit(1)
		}
		cache = c
	}
	// With -trace, every case span of the run hangs off one root span and
	// the whole tree is written as Chrome trace-event JSON on exit.
	var tracer *obs.Tracer
	var root obs.Span
	if *traceOut != "" {
		tracer = obs.NewTracer("runsuite", "")
		root = tracer.Start("suite")
	}
	memoStats := func() {
		if cache == nil {
			return
		}
		st := cache.Stats()
		logger.Info("memo summary",
			"hits", st.Hits, "misses", st.Misses,
			"evictions", st.Evictions, "load_errors", st.LoadErrors)
		root.SetAttr("memo_hits", strconv.FormatInt(st.Hits, 10))
		root.SetAttr("memo_misses", strconv.FormatInt(st.Misses, 10))
	}
	writeTrace := func() {
		if tracer == nil {
			return
		}
		tracer.Finish()
		f, err := os.Create(*traceOut)
		if err != nil {
			logger.Warn("trace not written", "error", err)
			return
		}
		werr := tracer.WriteChrome(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			logger.Warn("trace not written", "path", *traceOut, "error", werr)
			return
		}
		logger.Info("trace written", "path", *traceOut)
	}
	if *specFile != "" {
		// The suite-only flags do nothing on the -spec path; silently
		// accepting them would hand back the wrong output format (-json,
		// -md) or drop a requested deadline (-timeout). Refuse instead.
		if bad := suiteOnlyFlagsSet(); len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "runsuite: -%s cannot be combined with -spec\n",
				strings.Join(bad, ", -"))
			os.Exit(2)
		}
		code := runSpecFile(ctx, *specFile, *scale, *epochs, *seed, cache, *progress, *queryFile, root)
		memoStats()
		writeTrace()
		os.Exit(code)
	}
	if *progress {
		fmt.Fprintln(os.Stderr, "runsuite: -progress applies to -spec runs; ignored")
	}

	opts := datastall.SuiteOptions{
		Scale: *scale, Epochs: *epochs, Seed: *seed,
		Parallel: *parallel, Timeout: *timeout, Memo: cache,
	}
	if *ids != "" {
		opts.IDs = strings.Split(*ids, ",")
		for i := range opts.IDs {
			opts.IDs[i] = strings.TrimSpace(opts.IDs[i])
		}
	}
	opts.Progress = func(e datastall.SuiteExperiment) {
		ev := root.Event("experiment")
		ev.SetAttr("id", e.ID)
		ev.SetAttr("status", e.Status)
		if *quiet {
			return
		}
		switch e.Status {
		case "ok":
			fmt.Fprintf(os.Stderr, "runsuite: %-18s ok     (%.2fs)\n", e.ID, e.WallSeconds)
		case "error":
			fmt.Fprintf(os.Stderr, "runsuite: %-18s FAILED (%.2fs): %v\n", e.ID, e.WallSeconds, e.Err)
		}
	}

	start := time.Now()
	rep, err := datastall.RunSuite(ctx, opts)
	if err != nil && rep == nil {
		fmt.Fprintf(os.Stderr, "runsuite: %v\n", err)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "runsuite: %v\n", err)
	}

	// -md composes with -json (or text): one suite run can emit both.
	if *mdOut != "" {
		if werr := os.WriteFile(*mdOut, []byte(rep.Markdown()), 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "runsuite: %v\n", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "runsuite: wrote %s\n", *mdOut)
	}
	switch {
	case *queryFile != "":
		// Round-trip through the report's wire form: the same path a saved
		// -report file takes, so on-line and off-line queries see identical
		// cases.
		b, jerr := rep.JSONWith(false, true)
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "runsuite: %v\n", jerr)
			os.Exit(1)
		}
		cases, cerr := experiments.LoadSuiteCases(b)
		if cerr != nil {
			fmt.Fprintf(os.Stderr, "runsuite: %v\n", cerr)
			os.Exit(1)
		}
		if code := runQueryNDJSON(ctx, *queryFile, cases); code != 0 {
			os.Exit(code)
		}
	case *jsonOut:
		b, jerr := rep.JSONWith(*timings, *withCases)
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "runsuite: %v\n", jerr)
			os.Exit(1)
		}
		fmt.Printf("%s\n", b)
	case *mdOut != "":
		// Markdown already written; no stdout report.
	default:
		for _, e := range rep.Experiments {
			fmt.Printf("%s\n", e)
		}
	}

	memoStats()
	writeTrace()
	fmt.Fprintf(os.Stderr, "runsuite: %d ok, %d failed, %d skipped on %d worker(s) in %.2fs\n",
		rep.OK, rep.Failed, rep.Skipped, rep.Parallel, time.Since(start).Seconds())
	if rep.Failed > 0 || rep.Skipped > 0 {
		os.Exit(1)
	}
}

// suiteOnlyFlagsSet reports which explicitly-set flags have no meaning on
// the -spec path.
func suiteOnlyFlagsSet() []string {
	suiteOnly := map[string]bool{
		"ids": true, "parallel": true, "json": true, "timings": true,
		"md": true, "timeout": true, "q": true,
	}
	var bad []string
	flag.Visit(func(f *flag.Flag) {
		if suiteOnly[f.Name] {
			bad = append(bad, f.Name)
		}
	})
	return bad
}

// runSpecFile loads and executes one declarative scenario spec. The
// scenario runs through the same Spec machinery as the registry's
// sweep-shaped figures; withProgress attaches a console observer so every
// underlying training run streams per-epoch events to stderr.
func runSpecFile(ctx context.Context, path string, scale float64, epochs int, seed int64, cache *datastall.ResultCache, withProgress bool, queryFile string, trace obs.Span) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "runsuite: %v\n", err)
		return 1
	}
	sp, err := experiments.LoadSpec(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "runsuite: %s: %v\n", path, err)
		return 1
	}
	// Spec-pinned fields win over the Options the flags feed (a spec is a
	// reproducible scenario); warn when an explicitly-passed flag is about
	// to be shadowed so the user isn't misled about what actually ran.
	shadowed := map[string]bool{
		"scale":  sp.Base.Scale != 0,
		"epochs": sp.Base.Epochs != 0,
		"seed":   sp.Base.Seed != 0,
	}
	flag.Visit(func(f *flag.Flag) {
		if shadowed[f.Name] {
			fmt.Fprintf(os.Stderr, "runsuite: -%s %s ignored: the spec pins %s in its base\n",
				f.Name, f.Value, f.Name)
		}
	})
	var observers []trainer.Observer
	if withProgress {
		observers = append(observers, trainer.NewConsoleObserver(os.Stderr))
	}
	start := time.Now()
	rep, err := experiments.RunSpec(ctx, sp,
		experiments.Options{Scale: scale, Epochs: epochs, Seed: seed, Memo: cache, Trace: trace}, observers...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "runsuite: spec %s: %v\n", sp.Name, err)
		return 1
	}
	if queryFile != "" {
		// -query owns stdout: the scenario's table would corrupt the NDJSON
		// stream, so it is skipped (run without -query to see it).
		if code := runQueryNDJSON(ctx, queryFile, rep.Cases); code != 0 {
			return code
		}
	} else {
		fmt.Printf("== %s: %s ==\n%s", sp.Name, sp.Title, rep.Table.String())
		if rep.Notes != "" {
			fmt.Printf("notes: %s\n", rep.Notes)
		}
	}
	fmt.Fprintf(os.Stderr, "runsuite: spec %s done in %.2fs\n", sp.Name, time.Since(start).Seconds())
	return 0
}

// queryReportFile queries a saved suite report (-json -cases) offline: no
// simulation runs, the saved per-case capture is the data source.
func queryReportFile(ctx context.Context, reportPath, queryPath string) int {
	data, err := os.ReadFile(reportPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "runsuite: %v\n", err)
		return 1
	}
	cases, err := experiments.LoadSuiteCases(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "runsuite: %s: %v\n", reportPath, err)
		return 1
	}
	return runQueryNDJSON(ctx, queryPath, cases)
}

// runQueryNDJSON executes the query file over the cases and streams the
// result rows as NDJSON on stdout.
func runQueryNDJSON(ctx context.Context, queryPath string, cases []*experiments.CaseResult) int {
	src, err := os.ReadFile(queryPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "runsuite: %v\n", err)
		return 1
	}
	q, err := query.ParseQuery(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "runsuite: %s: %v\n", queryPath, err)
		return 1
	}
	st := query.NewStore()
	st.AddCases(cases)
	rows, err := query.New(st).Run(ctx, q)
	if err != nil {
		fmt.Fprintf(os.Stderr, "runsuite: %s: %v\n", queryPath, err)
		return 1
	}
	if _, err := query.WriteNDJSON(os.Stdout, rows); err != nil {
		fmt.Fprintf(os.Stderr, "runsuite: query: %v\n", err)
		return 1
	}
	return 0
}
