// Command runsuite runs the full experiment suite (or a subset) across a
// bounded worker pool and emits paper-style tables, a machine-readable JSON
// report, or EXPERIMENTS.md:
//
//	runsuite                         # every experiment, one worker per CPU
//	runsuite -ids fig2,fig5,table6   # a subset
//	runsuite -parallel 8 -json > suite.json
//	runsuite -md EXPERIMENTS.md      # regenerate the experiments index
//	runsuite -json -md EXPERIMENTS.md > suite.json   # both from one run
//
// Results are collected concurrently but emitted in experiment ID order, so
// for a given -seed the output is byte-identical for any -parallel (add
// -timings to include wall-clock data in the JSON report). One failing
// experiment is reported without aborting the rest; the exit status is
// non-zero if any experiment failed or was skipped on -timeout.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"datastall"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	ids := flag.String("ids", "", "comma-separated experiment ids (default: all)")
	scale := flag.Float64("scale", 0, "dataset scale (0 = per-experiment default)")
	epochs := flag.Int("epochs", 0, "epochs per training run (0 = default 3)")
	seed := flag.Int64("seed", 0, "simulation seed (0 = default 1)")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = one per CPU)")
	jsonOut := flag.Bool("json", false, "emit the JSON suite report on stdout")
	timings := flag.Bool("timings", false, "include wall-clock timings in the JSON report (breaks byte-for-byte reproducibility)")
	mdOut := flag.String("md", "", "write the suite as markdown (EXPERIMENTS.md) to this file")
	timeout := flag.Duration("timeout", 0, "overall suite deadline, e.g. 10m (0 = none)")
	quiet := flag.Bool("q", false, "suppress per-experiment progress on stderr")
	flag.Parse()

	if *list {
		fmt.Printf("%-18s %s\n", "ID", "TITLE")
		for _, e := range datastall.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := datastall.SuiteOptions{
		Scale: *scale, Epochs: *epochs, Seed: *seed,
		Parallel: *parallel, Timeout: *timeout,
	}
	if *ids != "" {
		opts.IDs = strings.Split(*ids, ",")
		for i := range opts.IDs {
			opts.IDs[i] = strings.TrimSpace(opts.IDs[i])
		}
	}
	if !*quiet {
		opts.Progress = func(e datastall.SuiteExperiment) {
			switch e.Status {
			case "ok":
				fmt.Fprintf(os.Stderr, "runsuite: %-18s ok     (%.2fs)\n", e.ID, e.WallSeconds)
			case "error":
				fmt.Fprintf(os.Stderr, "runsuite: %-18s FAILED (%.2fs): %v\n", e.ID, e.WallSeconds, e.Err)
			}
		}
	}

	start := time.Now()
	rep, err := datastall.RunSuite(context.Background(), opts)
	if err != nil && rep == nil {
		fmt.Fprintf(os.Stderr, "runsuite: %v\n", err)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "runsuite: %v\n", err)
	}

	// -md composes with -json (or text): one suite run can emit both.
	if *mdOut != "" {
		if werr := os.WriteFile(*mdOut, []byte(rep.Markdown()), 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "runsuite: %v\n", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "runsuite: wrote %s\n", *mdOut)
	}
	switch {
	case *jsonOut:
		b, jerr := rep.JSON(*timings)
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "runsuite: %v\n", jerr)
			os.Exit(1)
		}
		fmt.Printf("%s\n", b)
	case *mdOut != "":
		// Markdown already written; no stdout report.
	default:
		for _, e := range rep.Experiments {
			fmt.Printf("%s\n", e)
		}
	}

	fmt.Fprintf(os.Stderr, "runsuite: %d ok, %d failed, %d skipped on %d worker(s) in %.2fs\n",
		rep.OK, rep.Failed, rep.Skipped, rep.Parallel, time.Since(start).Seconds())
	if rep.Failed > 0 || rep.Skipped > 0 {
		os.Exit(1)
	}
}
