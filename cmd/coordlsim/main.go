// Command coordlsim simulates one training job with a chosen data loader and
// prints epoch-by-epoch timing, stalls and I/O — the fastest way to compare
// CoorDL against the DALI/PyTorch baselines on a scenario:
//
//	coordlsim -model shufflenetv2 -dataset openimages -loader coordl -cache 0.65
//	coordlsim -model alexnet -dataset openimages -loader dali-shuffle \
//	          -server config-hdd-1080ti -servers 2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"datastall"
)

func main() {
	model := flag.String("model", "resnet18", "model name")
	ds := flag.String("dataset", "", "dataset (default: the model's Table 1 dataset)")
	ldr := flag.String("loader", "coordl", "loader: coordl | dali-shuffle | dali-seq | pytorch-dl")
	server := flag.String("server", string(datastall.ServerSSDV100), "server SKU")
	servers := flag.Int("servers", 1, "number of servers (distributed training)")
	gpus := flag.Int("gpus", 0, "GPUs per server (0 = all)")
	batch := flag.Int("batch", 0, "per-GPU batch size (0 = paper reference)")
	epochs := flag.Int("epochs", 3, "epochs to simulate")
	cache := flag.Float64("cache", 0, "cache fraction of the dataset (0 = SKU's 400 GiB budget)")
	scale := flag.Float64("scale", 0.01, "dataset scale")
	threads := flag.Int("threads", 0, "prep threads per GPU (0 = fair share)")
	traceOut := flag.String("trace-out", "", "write the disk-I/O trace as CSV to this file")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	r, err := datastall.TrainContext(ctx, datastall.TrainConfig{
		Model: *model, Dataset: *ds,
		Loader: datastall.Loader(*ldr), Server: datastall.Server(*server),
		NumServers: *servers, GPUs: *gpus, Batch: *batch, Epochs: *epochs,
		PrepThreadsPerGPU: *threads,
		CacheFraction:     *cache, Scale: *scale,
		TraceDiskIO: *traceOut != "",
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "coordlsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%s on %s, loader=%s, %d server(s), scale %.3g\n",
		*model, *server, *ldr, *servers, *scale)
	fmt.Printf("%-7s %10s %8s %10s %8s\n", "epoch", "seconds", "stall%", "disk GiB", "hit%")
	for i, e := range r.Epochs {
		label := fmt.Sprintf("%d", i)
		if i == 0 {
			label += " (warm)"
		}
		fmt.Printf("%-7s %10.2f %8.1f %10.2f %8.1f\n",
			label, e.Seconds, e.StallFraction*100, e.DiskGiB, e.HitRate*100)
	}
	fmt.Printf("\nsteady state: %.2f s/epoch, %.0f samples/s, %.1f%% data stall, %.2f GiB disk/epoch\n",
		r.EpochSeconds, r.SamplesPerSecond, r.StallFraction*100, r.DiskGiBPerEpoch)
	if r.NetGiBPerEpoch > 0 {
		fmt.Printf("network: %.2f GiB/epoch (partitioned cache + gradient exchange)\n", r.NetGiBPerEpoch)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coordlsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		fmt.Fprintln(f, "time,disk_bytes")
		for _, pt := range r.DiskTrace {
			fmt.Fprintf(f, "%g,%g\n", pt[0], pt[1])
		}
		fmt.Printf("disk trace written to %s (%d events)\n", *traceOut, len(r.DiskTrace))
	}
}
