package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"datastall"
	"datastall/internal/cache"
	"datastall/internal/dataset"
	"datastall/internal/sim"
	"datastall/internal/stats"
)

// bench2Report is the BENCH_2.json schema: the zero-allocation hot-path
// PR's old-vs-new record. Each row is a testing.Benchmark result; "old"
// rows run the retained reference implementations (the frozen
// pointer-boxed engine, the map-backed MinIO) so the comparison stays
// reproducible on any host. The headline numbers are the allocs/op
// reduction ratios (the PR acceptance metric: >= 10x on the cache and
// event-dispatch workloads — unlike throughput, allocation counts are
// host-independent, which is what makes them a trustworthy gate on a 1-CPU
// CI container) plus the end-to-end suite wall time.
type bench2Report struct {
	Bench      string `json:"bench"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_max_procs"`
	GoVersion  string `json:"go_version"`

	// EventDispatch: one op = a 4-pair x 256-round store ping-pong
	// (~2K scheduled events) on the legacy engine, the new engine with
	// goroutine processes, and the new engine's callback fast path.
	EventDispatch []benchRow `json:"event_dispatch"`
	// CacheEpoch: one op = a full lookup/insert-on-miss epoch over 32768
	// items on a fresh half-capacity cache (the MinIO fetch loop).
	CacheEpoch []benchRow `json:"cache_epoch"`
	// CacheLookup: one op = one steady-state Lookup on a warmed cache.
	CacheLookup []benchRow `json:"cache_lookup"`

	// Alloc reduction ratios, old/new (new clamped to >= 1 alloc/op so a
	// zero-alloc new path reports a finite floor, not infinity).
	EventDispatchAllocReductionX float64 `json:"event_dispatch_allocs_reduction_x"`
	CacheEpochAllocReductionX    float64 `json:"cache_epoch_allocs_reduction_x"`

	// SuiteWallSeconds is one full default-scale experiment-suite run
	// (the golden-suite workload), end to end.
	SuiteWallSeconds float64 `json:"suite_wall_seconds"`
}

type benchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// row runs fn under testing.Benchmark and records its per-op numbers.
func row(name string, fn func(b *testing.B)) benchRow {
	r := testing.Benchmark(fn)
	return benchRow{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// reduction returns old/new allocs per op, clamping new to >= 1.
func reduction(old, new benchRow) float64 {
	n := new.AllocsPerOp
	if n < 1 {
		n = 1
	}
	return float64(old.AllocsPerOp) / float64(n)
}

const (
	b2Pairs  = 4
	b2Rounds = 256
	b2Items  = 1 << 15
)

// cacheEpoch drives one full lookup/insert epoch (the MinIO fetch loop)
// over a fresh cache built by mk.
func cacheEpoch(mk func() cache.Cache, order []dataset.ItemID) {
	c := mk()
	for _, id := range order {
		if !c.Lookup(id) {
			c.Insert(id, 1024)
		}
	}
}

// runBench2 measures the zero-alloc hot paths old-vs-new and writes the
// JSON report to out; returns the process exit code.
func runBench2(out string) int {
	rep := bench2Report{
		Bench:      "zero-alloc-hot-paths",
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}

	// Engine: the same ping-pong workload on all three dispatch paths.
	engineTable := &stats.Table{
		Title:   "Event dispatch (one op = 4x256 store ping-pong): boxed-heap engine vs slice-heap engine",
		Columns: []string{"engine", "ns/op", "allocs/op", "B/op"},
	}
	legacy := row("legacy-boxed-heap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim.BenchPingPongLegacy(b2Pairs, b2Rounds)
		}
	})
	goroutine := row("slice-heap-goroutine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim.BenchPingPong(b2Pairs, b2Rounds, false)
		}
	})
	callback := row("slice-heap-callback", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim.BenchPingPong(b2Pairs, b2Rounds, true)
		}
	})
	rep.EventDispatch = []benchRow{legacy, goroutine, callback}
	rep.EventDispatchAllocReductionX = reduction(legacy, callback)
	for _, r := range rep.EventDispatch {
		engineTable.AddRow(r.Name, r.NsPerOp, float64(r.AllocsPerOp), float64(r.BytesPerOp))
	}

	// Cache: the fetch loop (epoch) and the pure lookup, map vs dense.
	order := dataset.NewRandomSampler(dataset.FullShard(
		&dataset.Dataset{Name: "bench", NumItems: b2Items, TotalBytes: b2Items * 1024}), 1).EpochOrder(0)
	capBytes := float64(b2Items) * 1024 / 2
	cacheTable := &stats.Table{
		Title:   "Cache hot paths (32768 items, 50% capacity): map-backed vs dense-slice MinIO",
		Columns: []string{"bench", "ns/op", "allocs/op", "B/op"},
	}
	epochMap := row("epoch-map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cacheEpoch(func() cache.Cache { return cache.NewMapMinIO(capBytes) }, order)
		}
	})
	epochDense := row("epoch-dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cacheEpoch(func() cache.Cache { return cache.NewMinIOSized(capBytes, b2Items) }, order)
		}
	})
	rep.CacheEpoch = []benchRow{epochMap, epochDense}
	rep.CacheEpochAllocReductionX = reduction(epochMap, epochDense)

	warmMap := cache.NewMapMinIO(capBytes)
	warmDense := cache.NewMinIOSized(capBytes, b2Items)
	for _, id := range order {
		warmMap.Insert(id, 1024)
		warmDense.Insert(id, 1024)
	}
	lookup := func(c cache.Cache) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Lookup(order[i&(b2Items-1)])
			}
		}
	}
	rep.CacheLookup = []benchRow{
		row("lookup-map", lookup(warmMap)),
		row("lookup-dense", lookup(warmDense)),
	}
	for _, r := range append(append([]benchRow{}, rep.CacheEpoch...), rep.CacheLookup...) {
		cacheTable.AddRow(r.Name, r.NsPerOp, float64(r.AllocsPerOp), float64(r.BytesPerOp))
	}

	// End to end: one full default-scale suite run (the golden workload).
	start := time.Now()
	if _, err := datastall.RunSuite(context.Background(), datastall.SuiteOptions{}); err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: suite: %v\n", err)
		return 1
	}
	rep.SuiteWallSeconds = time.Since(start).Seconds()

	fmt.Printf("%s\n%s\n", engineTable, cacheTable)
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: %v\n", err)
		return 1
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr,
		"stallbench: wrote %s (allocs/op reduction: %.0fx event dispatch, %.0fx cache epoch; suite %.2fs)\n",
		out, rep.EventDispatchAllocReductionX, rep.CacheEpochAllocReductionX, rep.SuiteWallSeconds)
	return 0
}
