package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"datastall"
	"datastall/internal/experiments"
	"datastall/internal/memo"
)

// bench5Report is the BENCH_5.json schema: result-memoization speedups.
// Two workloads, each cold-then-warm against a content-addressed cache:
// the fig5+fig9a+fig18 suite (warm rerun must simulate nothing and render
// identical output), and a 100-case sweep whose cache was primed by a
// 90-case sweep sharing 90% of its grid — the memoized run should cost
// roughly 10 single-case simulations, not 100 (sublinear in grid size).
type bench5Report struct {
	Bench      string `json:"bench"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_max_procs"`
	GoVersion  string `json:"go_version"`

	Suite bench5Suite `json:"suite"`
	Sweep bench5Sweep `json:"overlap_sweep"`
	Note  string      `json:"note"`
}

type bench5Suite struct {
	Experiments     []string `json:"experiments"`
	UniqueCases     int64    `json:"unique_cases"`
	ColdWallSeconds float64  `json:"cold_wall_seconds"`
	WarmWallSeconds float64  `json:"warm_wall_seconds"`
	Speedup         float64  `json:"speedup"`
	WarmHits        int64    `json:"warm_hits"`
	WarmMisses      int64    `json:"warm_misses"`
	ByteIdentical   bool     `json:"output_byte_identical"`
}

type bench5Sweep struct {
	GridCases         int     `json:"grid_cases"`
	PrimedCases       int     `json:"primed_cases"`
	SingleCaseSeconds float64 `json:"single_case_seconds"`
	ColdWallSeconds   float64 `json:"cold_wall_seconds"`
	WarmWallSeconds   float64 `json:"warm_wall_seconds"`
	Speedup           float64 `json:"speedup"`
	WarmVsSingleCase  float64 `json:"warm_wall_vs_single_case"`
	WarmHits          int64   `json:"warm_hits"`
	WarmMisses        int64   `json:"warm_misses"`
}

var bench5IDs = []string{"fig5", "fig9a", "fig18"}

// bench5SweepSpec builds an n-point cache_fraction sweep; grids built with
// the same n share every cell, and n+k extends n by k fresh cells.
func bench5SweepSpec(n int) ([]byte, error) {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 0.005 * float64(i+1)
	}
	return json.Marshal(map[string]interface{}{
		"name":       "bench5-sweep",
		"title":      "memoization overlap sweep",
		"row_header": []string{"cache"},
		"base": map[string]interface{}{
			"model": "resnet18", "dataset": "imagenet-1k",
			"scale": 0.02, "epochs": 2, "seed": 1, "batch": 16, "loader": "coordl",
		},
		"rows":    map[string]interface{}{"param": "cache_fraction", "values": vals},
		"columns": []map[string]interface{}{{"label": "epoch s", "metric": "epoch_s"}},
	})
}

// bench5SuiteText renders the suite output that must be byte-stable across
// cold and warm runs.
func bench5SuiteText(rep *datastall.SuiteReport) string {
	s := ""
	for _, e := range rep.Experiments {
		s += e.String()
	}
	return s
}

func bench5RunSuite(ctx context.Context, dir string) (float64, string, *datastall.ResultCacheStats, error) {
	cache, err := datastall.OpenResultCache(dir, 0)
	if err != nil {
		return 0, "", nil, err
	}
	start := time.Now()
	rep, err := datastall.RunSuite(ctx, datastall.SuiteOptions{IDs: bench5IDs, Memo: cache})
	if err != nil {
		return 0, "", nil, err
	}
	wall := time.Since(start).Seconds()
	if rep.Failed+rep.Skipped > 0 {
		return 0, "", nil, fmt.Errorf("suite ran %d failed / %d skipped", rep.Failed, rep.Skipped)
	}
	st := cache.Stats()
	return wall, bench5SuiteText(rep), &st, nil
}

// bench5RunSweep runs the n-point sweep against a cache opened fresh on
// dir (an empty dir is a cold run), returning the wall time and the run's
// hit/miss accounting.
func bench5RunSweep(ctx context.Context, dir string, n int) (float64, *memo.Stats, error) {
	raw, err := bench5SweepSpec(n)
	if err != nil {
		return 0, nil, err
	}
	sp, err := experiments.LoadSpec(raw)
	if err != nil {
		return 0, nil, err
	}
	cache, err := memo.Open(memo.Options{Dir: dir})
	if err != nil {
		return 0, nil, err
	}
	start := time.Now()
	if _, err := experiments.RunSpec(ctx, sp, experiments.Options{Memo: cache}); err != nil {
		return 0, nil, err
	}
	wall := time.Since(start).Seconds()
	st := cache.Stats()
	return wall, &st, nil
}

func runBench5(out string) int {
	ctx := context.Background()
	rep := &bench5Report{
		Bench:      "result memoization: warm suite reruns and 90%-overlap sweeps vs cold simulation",
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Note: "warm numbers serve every previously-seen case from the content-addressed cache; " +
			"the overlap sweep's warm wall should track its 10 fresh cells (~10x single_case_seconds), " +
			"not its 100-cell grid — that gap is the sublinear-sweep claim",
	}
	scratch, err := os.MkdirTemp("", "bench5-memo-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: bench5: %v\n", err)
		return 1
	}
	defer os.RemoveAll(scratch)

	suiteDir := scratch + "/suite"
	coldWall, coldText, coldStats, err := bench5RunSuite(ctx, suiteDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: bench5: cold suite: %v\n", err)
		return 1
	}
	warmWall, warmText, warmStats, err := bench5RunSuite(ctx, suiteDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: bench5: warm suite: %v\n", err)
		return 1
	}
	if warmStats.Misses != 0 {
		fmt.Fprintf(os.Stderr, "stallbench: bench5: warm suite simulated %d case(s)\n", warmStats.Misses)
		return 1
	}
	if warmText != coldText {
		fmt.Fprintln(os.Stderr, "stallbench: bench5: warm suite output differs from cold")
		return 1
	}
	rep.Suite = bench5Suite{
		Experiments:     bench5IDs,
		UniqueCases:     coldStats.Misses,
		ColdWallSeconds: coldWall,
		WarmWallSeconds: warmWall,
		Speedup:         coldWall / warmWall,
		WarmHits:        warmStats.Hits,
		WarmMisses:      warmStats.Misses,
		ByteIdentical:   true,
	}
	fmt.Fprintf(os.Stderr, "stallbench: bench5: suite cold %.2fs, warm %.3fs (%.0fx, %d cases from cache)\n",
		coldWall, warmWall, rep.Suite.Speedup, warmStats.Hits)

	// Single-case baseline: a 1-point sweep against an empty cache.
	singleWall, _, err := bench5RunSweep(ctx, scratch+"/single", 1)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: bench5: single case: %v\n", err)
		return 1
	}
	coldSweepWall, coldSweepStats, err := bench5RunSweep(ctx, scratch+"/sweep-cold", 100)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: bench5: cold sweep: %v\n", err)
		return 1
	}
	if coldSweepStats.Misses != 100 {
		fmt.Fprintf(os.Stderr, "stallbench: bench5: cold sweep missed %d, want 100\n", coldSweepStats.Misses)
		return 1
	}
	// Prime a second directory with the 90-point prefix, then run the full
	// 100-point grid against it: 90 hits, 10 fresh simulations.
	overlapDir := scratch + "/sweep-overlap"
	if _, _, err := bench5RunSweep(ctx, overlapDir, 90); err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: bench5: priming sweep: %v\n", err)
		return 1
	}
	warmSweepWall, warmSweepStats, err := bench5RunSweep(ctx, overlapDir, 100)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: bench5: overlap sweep: %v\n", err)
		return 1
	}
	if warmSweepStats.Hits != 90 || warmSweepStats.Misses != 10 {
		fmt.Fprintf(os.Stderr, "stallbench: bench5: overlap sweep hits=%d misses=%d, want 90/10\n",
			warmSweepStats.Hits, warmSweepStats.Misses)
		return 1
	}
	rep.Sweep = bench5Sweep{
		GridCases:         100,
		PrimedCases:       90,
		SingleCaseSeconds: singleWall,
		ColdWallSeconds:   coldSweepWall,
		WarmWallSeconds:   warmSweepWall,
		Speedup:           coldSweepWall / warmSweepWall,
		WarmVsSingleCase:  warmSweepWall / singleWall,
		WarmHits:          warmSweepStats.Hits,
		WarmMisses:        warmSweepStats.Misses,
	}
	fmt.Fprintf(os.Stderr, "stallbench: bench5: sweep cold %.2fs, 90%%-primed %.2fs (%.1fx; %.1fx a single case)\n",
		coldSweepWall, warmSweepWall, rep.Sweep.Speedup, rep.Sweep.WarmVsSingleCase)

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: bench5: %v\n", err)
		return 1
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: bench5: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "stallbench: wrote %s\n", out)
	return 0
}
