package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datastall/internal/server"
	"datastall/internal/trainer"
)

// bench3Report is the BENCH_3.json schema: the job-service PR's measured
// record. SubmitToComplete is the full HTTP round trip — POST /v1/jobs
// through scheduler queue, worker execution, and terminal-status poll — for
// a small job, the latency a client of the service actually experiences.
// FanoutHTTP streams one job's events to 1/4/16 concurrent NDJSON
// subscribers and reports aggregate delivered events/sec (the broadcast
// ring guarantees the simulation never waits on a subscriber, so aggregate
// delivery should scale with subscriber count until the host runs out of
// cores — on a 1-CPU container the interesting signal is that it degrades
// gracefully instead of stalling). FanoutBroadcast isolates the
// trainer.Broadcaster data structure from HTTP: a tight publish loop
// against concurrently draining subscribers.
type bench3Report struct {
	Bench      string `json:"bench"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_max_procs"`
	GoVersion  string `json:"go_version"`

	SubmitToComplete latencyStats  `json:"submit_to_complete_ms"`
	FanoutHTTP       []fanoutRow   `json:"fanout_http"`
	FanoutBroadcast  []fanoutMicro `json:"fanout_broadcast"`
}

type latencyStats struct {
	Runs float64 `json:"runs"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

type fanoutRow struct {
	Subscribers     int     `json:"subscribers"`
	EventsDelivered int64   `json:"events_delivered"`
	WallSeconds     float64 `json:"wall_seconds"`
	EventsPerSec    float64 `json:"events_per_sec"`
}

type fanoutMicro struct {
	Subscribers     int     `json:"subscribers"`
	Published       int     `json:"published"`
	EventsDelivered int64   `json:"events_delivered"`
	EventsPerSec    float64 `json:"events_per_sec_delivered"`
}

const (
	bench3TinyJob = `{"job": {"model": "resnet18", "scale": 0.005, "epochs": 2}}`
	// bench3StreamJob emits 2*epochs+2 trainer events over ~1s of wall
	// time on a 1-CPU host: long enough to stream live, short enough to
	// repeat per subscriber count.
	bench3StreamJob = `{"job": {"model": "resnet18", "dataset": "imagenet-1k", "scale": 0.05, "epochs": 40, "batch": 16, "loader": "coordl", "cache_fraction": 0.35}}`
	// bench3Blocker parks the single worker so streams can attach to a
	// queued job before it starts.
	bench3Blocker = `{"job": {"model": "resnet18", "dataset": "imagenet-1k", "scale": 0.2, "epochs": 50, "batch": 16, "loader": "coordl", "cache_fraction": 0.35}}`
)

func runBench3(out string) int {
	rep := &bench3Report{
		Bench:      "stallserved job service: submit->complete latency and event fan-out throughput",
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}

	if err := bench3Latency(rep); err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: bench3: %v\n", err)
		return 1
	}
	for _, subs := range []int{1, 4, 16} {
		row, err := bench3FanoutHTTP(subs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stallbench: bench3: fanout %d: %v\n", subs, err)
			return 1
		}
		rep.FanoutHTTP = append(rep.FanoutHTTP, row)
		fmt.Fprintf(os.Stderr, "stallbench: bench3: http fan-out x%-2d %8.0f events/s (%d events, %.2fs)\n",
			subs, row.EventsPerSec, row.EventsDelivered, row.WallSeconds)
	}
	for _, subs := range []int{1, 4, 16} {
		rep.FanoutBroadcast = append(rep.FanoutBroadcast, bench3FanoutMicro(subs))
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: bench3: %v\n", err)
		return 1
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: bench3: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "stallbench: wrote %s\n", out)
	return 0
}

func bench3Server(workers int) (*server.Server, *httptest.Server, error) {
	srv, err := server.New(server.Config{Workers: workers, QueueDepth: 64})
	if err != nil {
		return nil, nil, err
	}
	return srv, httptest.NewServer(srv.Handler()), nil
}

// bench3Submit POSTs body and returns the job ID.
func bench3Submit(base, body string) (string, error) {
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: %d %s", resp.StatusCode, b)
	}
	var v struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(b, &v); err != nil {
		return "", err
	}
	return v.ID, nil
}

// bench3Wait polls GET /v1/jobs/{id} until the job is terminal, bounded so
// a wedged job fails the bench instead of hanging the CI step.
func bench3Wait(base, id string) (string, error) {
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return "", err
		}
		var v struct {
			Status string `json:"status"`
		}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		switch v.Status {
		case "completed", "failed", "cancelled":
			return v.Status, nil
		}
		time.Sleep(time.Millisecond)
	}
	return "", fmt.Errorf("job %s not terminal after 5m", id)
}

func bench3Latency(rep *bench3Report) error {
	srv, ts, err := bench3Server(1)
	if err != nil {
		return err
	}
	defer srv.Close()
	defer ts.Close()

	const runs = 8
	st := latencyStats{Runs: runs, Min: 1e18}
	for i := 0; i < runs; i++ {
		start := time.Now()
		id, err := bench3Submit(ts.URL, bench3TinyJob)
		if err != nil {
			return err
		}
		status, err := bench3Wait(ts.URL, id)
		if err != nil {
			return err
		}
		if status != "completed" {
			return fmt.Errorf("latency job %s ended %s", id, status)
		}
		ms := float64(time.Since(start).Microseconds()) / 1e3
		st.Mean += ms / runs
		if ms < st.Min {
			st.Min = ms
		}
		if ms > st.Max {
			st.Max = ms
		}
	}
	rep.SubmitToComplete = st
	fmt.Fprintf(os.Stderr, "stallbench: bench3: submit->complete %.1fms mean (min %.1f, max %.1f, %d runs)\n",
		st.Mean, st.Min, st.Max, runs)
	return nil
}

// bench3FanoutHTTP attaches subs NDJSON streams to one queued job, releases
// it, and counts aggregate delivered events until every stream closes.
func bench3FanoutHTTP(subs int) (fanoutRow, error) {
	srv, ts, err := bench3Server(1)
	if err != nil {
		return fanoutRow{}, err
	}
	defer srv.Close()
	defer ts.Close()

	blocker, err := bench3Submit(ts.URL, bench3Blocker)
	if err != nil {
		return fanoutRow{}, err
	}
	id, err := bench3Submit(ts.URL, bench3StreamJob)
	if err != nil {
		return fanoutRow{}, err
	}

	var delivered atomic.Int64
	var wg sync.WaitGroup
	attached := make(chan error, subs)
	for i := 0; i < subs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
			if err != nil {
				attached <- err
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			first := true
			for sc.Scan() {
				if first {
					// The status snapshot: this stream is attached.
					attached <- nil
					first = false
					continue
				}
				delivered.Add(1)
			}
		}()
	}
	for i := 0; i < subs; i++ {
		if err := <-attached; err != nil {
			return fanoutRow{}, err
		}
	}

	start := time.Now()
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+blocker, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		return fanoutRow{}, err
	} else {
		resp.Body.Close()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	n := delivered.Load()
	return fanoutRow{
		Subscribers: subs, EventsDelivered: n,
		WallSeconds: wall, EventsPerSec: float64(n) / wall,
	}, nil
}

// bench3FanoutMicro measures the raw Broadcaster: one publisher against
// subs concurrently draining subscriptions.
func bench3FanoutMicro(subs int) fanoutMicro {
	const published = 200_000
	bc := trainer.NewBroadcaster()
	var delivered atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		sub := bc.Subscribe(4096)
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for {
				if _, err := sub.Next(ctx); err != nil {
					return
				}
				delivered.Add(1)
			}
		}()
	}
	start := time.Now()
	for i := 0; i < published; i++ {
		bc.Observe(trainer.EpochStarted{Epoch: i})
	}
	bc.Close()
	wg.Wait()
	wall := time.Since(start).Seconds()
	n := delivered.Load()
	return fanoutMicro{
		Subscribers: subs, Published: published,
		EventsDelivered: n, EventsPerSec: float64(n) / wall,
	}
}
