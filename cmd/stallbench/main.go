// Command stallbench reproduces the paper's tables and figures.
//
//	stallbench -list
//	stallbench -run fig2
//	stallbench -run all -scale 0.01 > results.txt
//
// Each experiment prints a paper-style table plus the published result it
// reproduces; -scale trades fidelity margin for runtime (1.0 = paper-sized
// datasets).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"datastall"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "experiment id to run, or 'all'")
	scale := flag.Float64("scale", 0, "dataset scale (0 = per-experiment default)")
	epochs := flag.Int("epochs", 0, "epochs per training run (0 = default 3)")
	seed := flag.Int64("seed", 0, "simulation seed")
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-18s %s\n", "ID", "TITLE")
		for _, e := range datastall.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
			fmt.Printf("%-18s   paper: %s\n", "", e.Paper)
		}
	case *run == "all":
		for _, e := range datastall.Experiments() {
			runOne(e.ID, *scale, *epochs, *seed)
		}
	case *run != "":
		runOne(*run, *scale, *epochs, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(id string, scale float64, epochs int, seed int64) {
	start := time.Now()
	rep, err := datastall.RunExperiment(id, datastall.ExperimentOptions{
		Scale: scale, Epochs: epochs, Seed: seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("== %s: %s ==\n", rep.ID, rep.Title)
	fmt.Printf("paper: %s\n", rep.Paper)
	fmt.Print(rep.Text)
	if rep.Notes != "" {
		fmt.Printf("notes: %s\n", rep.Notes)
	}
	fmt.Printf("(%.2fs wall clock)\n\n", time.Since(start).Seconds())
}
