// Command stallbench reproduces the paper's tables and figures, and
// benchmarks the simulator and loader hot paths.
//
//	stallbench -list
//	stallbench -run fig2
//	stallbench -run all -parallel 8 -scale 0.01 > results.txt
//	stallbench -bench -bench-out BENCH_1.json
//	stallbench -bench2 -bench2-out BENCH_2.json
//	stallbench -bench3 -bench3-out BENCH_3.json
//	stallbench -bench4 -bench4-out BENCH_4.json
//	stallbench -bench5 -bench5-out BENCH_5.json
//	stallbench -run all -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Each experiment prints a paper-style table plus the published result it
// reproduces; -scale trades fidelity margin for runtime (1.0 = paper-sized
// datasets). With -run all the suite fans out across -parallel workers via
// the shared orchestrator; output stays in experiment ID order (and is
// byte-identical for any -parallel at a given -seed), with per-experiment
// wall clocks reported on stderr.
//
// -bench measures the concurrent data-loading pipeline on the host (real
// goroutines, not the simulator): sharded vs single-mutex cache lookup
// throughput and pipeline epoch wall time at 1/2/4/8 workers, written as
// JSON to -bench-out (BENCH_1.json in the perf trajectory).
//
// -bench2 measures the zero-allocation hot paths old-vs-new: event
// scheduling/dispatch on the frozen pre-rewrite engine vs the slice-backed
// heap (goroutine and callback process flavours), the cache fetch loop on
// the map-backed vs dense MinIO, and full-suite wall time, written as JSON
// to -bench2-out (BENCH_2.json).
//
// -bench3 measures the stallserved HTTP job service end to end: the POST
// /v1/jobs submit -> worker -> terminal-status round trip for a small job,
// and aggregate /events fan-out delivery throughput at 1/4/16 concurrent
// NDJSON subscribers (plus the raw Broadcaster data structure without
// HTTP), written as JSON to -bench3-out (BENCH_3.json).
//
// -bench4 measures distributed mode: one 8-cell spec grid run on a plain
// single-node server, then scattered by a coordinator across 1/2/4
// in-process stallserved workers (real HTTP via httptest listeners), each
// fleet's gathered report byte-checked against the single-node one before
// its cases/sec counts, written as JSON to -bench4-out (BENCH_4.json).
//
// -bench5 measures result memoization: the fig5+fig9a+fig18 suite cold
// then warm against a content-addressed cache (the warm rerun must
// simulate nothing and render identical output), and a 100-case sweep run
// against a cache primed with 90% of its grid — whose wall should track
// the 10 fresh cells, not the 100-cell grid — written as JSON to
// -bench5-out (BENCH_5.json).
//
// -cpuprofile/-memprofile write pprof profiles of whatever work the other
// flags select — the profiling workflow behind every hot-path PR
// (`make profile` bundles the common invocation).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"datastall"
)

func main() { os.Exit(run()) }

func run() int {
	list := flag.Bool("list", false, "list available experiments")
	runID := flag.String("run", "", "experiment id to run, or 'all'")
	scale := flag.Float64("scale", 0, "dataset scale (0 = per-experiment default)")
	epochs := flag.Int("epochs", 0, "epochs per training run (0 = default 3)")
	seed := flag.Int64("seed", 0, "simulation seed")
	parallel := flag.Int("parallel", 0, "workers for -run all (0 = one per CPU)")
	bench := flag.Bool("bench", false, "benchmark the concurrent loader backend")
	benchOut := flag.String("bench-out", "BENCH_1.json", "output file for -bench results")
	bench2 := flag.Bool("bench2", false, "benchmark zero-alloc hot paths old-vs-new (engine, cache, suite)")
	bench2Out := flag.String("bench2-out", "BENCH_2.json", "output file for -bench2 results")
	bench3 := flag.Bool("bench3", false, "benchmark the HTTP job service (submit latency, event fan-out)")
	bench3Out := flag.String("bench3-out", "BENCH_3.json", "output file for -bench3 results")
	bench4 := flag.Bool("bench4", false, "benchmark coordinator-mode case throughput at 1/2/4 fleet workers")
	bench4Out := flag.String("bench4-out", "BENCH_4.json", "output file for -bench4 results")
	bench5 := flag.Bool("bench5", false, "benchmark result memoization: warm suite reruns and 90%-overlap sweeps")
	bench5Out := flag.String("bench5-out", "BENCH_5.json", "output file for -bench5 results")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	// SIGINT/SIGTERM cancel the context; the simulations poll it, so an
	// interrupted run dies cleanly (profiles still flush via the defers).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stallbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "stallbench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "stallbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "stallbench: %v\n", err)
			}
		}()
	}

	switch {
	case *list:
		fmt.Printf("%-18s %s\n", "ID", "TITLE")
		for _, e := range datastall.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
			fmt.Printf("%-18s   paper: %s\n", "", e.Paper)
		}
		return 0
	case *bench:
		return runBench(*benchOut)
	case *bench2:
		return runBench2(*bench2Out)
	case *bench3:
		return runBench3(*bench3Out)
	case *bench4:
		return runBench4(*bench4Out)
	case *bench5:
		return runBench5(*bench5Out)
	case *runID == "all":
		return runAll(ctx, *scale, *epochs, *seed, *parallel)
	case *runID != "":
		return runOne(ctx, *runID, *scale, *epochs, *seed)
	default:
		flag.Usage()
		return 2
	}
}

// runAll fans the whole registry across the suite orchestrator.
func runAll(ctx context.Context, scale float64, epochs int, seed int64, parallel int) int {
	rep, err := datastall.RunSuite(ctx, datastall.SuiteOptions{
		Scale: scale, Epochs: epochs, Seed: seed, Parallel: parallel,
		Progress: func(e datastall.SuiteExperiment) {
			fmt.Fprintf(os.Stderr, "stallbench: %-18s %-6s (%.2fs)\n", e.ID, e.Status, e.WallSeconds)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: %v\n", err)
		return 1
	}
	for _, e := range rep.Experiments {
		fmt.Printf("%s\n", e)
	}
	if rep.Failed > 0 {
		return 1
	}
	return 0
}

func runOne(ctx context.Context, id string, scale float64, epochs int, seed int64) int {
	start := time.Now()
	rep, err := datastall.RunExperiment(ctx, id, datastall.ExperimentOptions{
		Scale: scale, Epochs: epochs, Seed: seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: %v\n", err)
		return 1
	}
	fmt.Printf("%s\n", rep)
	fmt.Fprintf(os.Stderr, "stallbench: %s done in %.2fs\n", id, time.Since(start).Seconds())
	return 0
}
