// Command stallbench reproduces the paper's tables and figures, and
// benchmarks the concurrent loader backend.
//
//	stallbench -list
//	stallbench -run fig2
//	stallbench -run all -parallel 8 -scale 0.01 > results.txt
//	stallbench -bench -bench-out BENCH_1.json
//
// Each experiment prints a paper-style table plus the published result it
// reproduces; -scale trades fidelity margin for runtime (1.0 = paper-sized
// datasets). With -run all the suite fans out across -parallel workers via
// the shared orchestrator; output stays in experiment ID order (and is
// byte-identical for any -parallel at a given -seed), with per-experiment
// wall clocks reported on stderr.
//
// -bench measures the concurrent data-loading pipeline on the host (real
// goroutines, not the simulator): sharded vs single-mutex cache lookup
// throughput and pipeline epoch wall time at 1/2/4/8 workers, written as
// JSON to -bench-out to seed the perf trajectory (BENCH_*.json).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"datastall"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "experiment id to run, or 'all'")
	scale := flag.Float64("scale", 0, "dataset scale (0 = per-experiment default)")
	epochs := flag.Int("epochs", 0, "epochs per training run (0 = default 3)")
	seed := flag.Int64("seed", 0, "simulation seed")
	parallel := flag.Int("parallel", 0, "workers for -run all (0 = one per CPU)")
	bench := flag.Bool("bench", false, "benchmark the concurrent loader backend")
	benchOut := flag.String("bench-out", "BENCH_1.json", "output file for -bench results")
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-18s %s\n", "ID", "TITLE")
		for _, e := range datastall.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
			fmt.Printf("%-18s   paper: %s\n", "", e.Paper)
		}
	case *bench:
		runBench(*benchOut)
	case *run == "all":
		runAll(*scale, *epochs, *seed, *parallel)
	case *run != "":
		runOne(*run, *scale, *epochs, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runAll fans the whole registry across the suite orchestrator.
func runAll(scale float64, epochs int, seed int64, parallel int) {
	rep, err := datastall.RunSuite(context.Background(), datastall.SuiteOptions{
		Scale: scale, Epochs: epochs, Seed: seed, Parallel: parallel,
		Progress: func(e datastall.SuiteExperiment) {
			fmt.Fprintf(os.Stderr, "stallbench: %-18s %-6s (%.2fs)\n", e.ID, e.Status, e.WallSeconds)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: %v\n", err)
		os.Exit(1)
	}
	for _, e := range rep.Experiments {
		fmt.Printf("%s\n", e)
	}
	if rep.Failed > 0 {
		os.Exit(1)
	}
}

func runOne(id string, scale float64, epochs int, seed int64) {
	start := time.Now()
	rep, err := datastall.RunExperiment(id, datastall.ExperimentOptions{
		Scale: scale, Epochs: epochs, Seed: seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s\n", rep)
	fmt.Fprintf(os.Stderr, "stallbench: %s done in %.2fs\n", id, time.Since(start).Seconds())
}
