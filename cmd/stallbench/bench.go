package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"datastall/internal/cache"
	"datastall/internal/dataset"
	"datastall/internal/loader"
	"datastall/internal/stats"
)

// benchReport is the BENCH_*.json schema: one record per PR that touches the
// hot path, so the numbers form a trajectory. Throughputs are host-dependent
// — NumCPU/GOMAXPROCS are recorded so runs are comparable.
type benchReport struct {
	Bench      string        `json:"bench"`
	Items      int           `json:"items"`
	NumCPU     int           `json:"num_cpu"`
	GoMaxProcs int           `json:"go_max_procs"`
	GoVersion  string        `json:"go_version"`
	Lookup     []lookupPoint `json:"lookup_throughput"`
	Epoch      []epochPoint  `json:"epoch_walltime"`
	// SpeedupAt8 is sharded/single-mutex lookup throughput at 8 workers
	// (the PR acceptance metric; needs >= 4 CPUs to exceed ~1x).
	SpeedupAt8 float64 `json:"speedup_sharded_vs_mutex_8w"`
}

type lookupPoint struct {
	Workers     int     `json:"workers"`
	ShardedOps  float64 `json:"sharded_lookups_per_sec"`
	SingleMutex float64 `json:"single_mutex_lookups_per_sec"`
	Speedup     float64 `json:"speedup"`
}

type epochPoint struct {
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
	ItemsPerSec float64 `json:"items_per_sec"`
	Hits        int     `json:"hits"`
	Misses      int     `json:"misses"`
}

// runBench measures the concurrent loader pipeline on this host and writes
// the JSON report to out; returns the process exit code.
func runBench(out string) int {
	const (
		items        = 1 << 15
		opsPerWorker = 400_000
		batch        = 128
	)
	workerCounts := []int{1, 2, 4, 8}

	rep := benchReport{
		Bench:      "concurrent-loader",
		Items:      items,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}

	lookupTable := &stats.Table{
		Title:   "Cache lookup throughput (Mlookups/s): lock-striped ShardedMinIO vs one big mutex",
		Columns: []string{"workers", "sharded", "single-mutex", "speedup"},
	}
	for _, w := range workerCounts {
		sharded, sids := loader.BenchCacheWorkload(items, func(cap float64) cache.Cache {
			return cache.NewShardedMinIO(cap, 0)
		})
		locked, lids := loader.BenchCacheWorkload(items, func(cap float64) cache.Cache {
			return cache.NewLocked(cache.NewMinIO(cap))
		})
		s := loader.MeasureLookupThroughput(sharded, sids, w, opsPerWorker)
		l := loader.MeasureLookupThroughput(locked, lids, w, opsPerWorker)
		pt := lookupPoint{Workers: w, ShardedOps: s, SingleMutex: l, Speedup: s / l}
		rep.Lookup = append(rep.Lookup, pt)
		if w == 8 {
			rep.SpeedupAt8 = pt.Speedup
		}
		lookupTable.AddRow(w, s/1e6, l/1e6, pt.Speedup)
	}

	epochTable := &stats.Table{
		Title:   "Pipeline steady-state epoch wall time (fetch->prep over ShardedMinIO, 50% cache)",
		Columns: []string{"workers", "wall-s", "Mitems/s", "hit-%"},
	}
	d := &dataset.Dataset{Name: "bench", NumItems: items, TotalBytes: items * 1024}
	order := dataset.NewRandomSampler(dataset.FullShard(d), 1).EpochOrder(0)
	for _, w := range workerCounts {
		c := cache.NewShardedMinIO(d.TotalBytes/2, 0)
		loader.MeasureEpochWall(d, c, order, w, batch) // warmup epoch
		best := loader.EpochReport{WallSeconds: -1}
		for i := 0; i < 3; i++ {
			r := loader.MeasureEpochWall(d, c, order, w, batch)
			if best.WallSeconds < 0 || r.WallSeconds < best.WallSeconds {
				best = r
			}
		}
		pt := epochPoint{
			Workers: w, WallSeconds: best.WallSeconds,
			ItemsPerSec: float64(best.Items) / best.WallSeconds,
			Hits:        best.Fetch.Hits, Misses: best.Fetch.Misses,
		}
		rep.Epoch = append(rep.Epoch, pt)
		epochTable.AddRow(w, pt.WallSeconds, pt.ItemsPerSec/1e6,
			100*float64(pt.Hits)/float64(pt.Hits+pt.Misses))
	}

	fmt.Printf("%s\n%s\n", lookupTable, epochTable)
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: %v\n", err)
		return 1
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "stallbench: wrote %s (speedup at 8 workers: %.2fx on %d CPUs)\n",
		out, rep.SpeedupAt8, rep.NumCPU)
	return 0
}
