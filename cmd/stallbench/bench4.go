package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"datastall/internal/server"
)

// bench4Report is the BENCH_4.json schema: coordinator-mode case
// throughput. One spec grid is run on a plain single-node server, then
// scattered by a coordinator across fleets of 1/2/4 in-process stallserved
// workers (httptest listeners, real HTTP). Every fleet's gathered report is
// byte-compared to the single-node one before its row counts — a fleet
// that broke fidelity would be measuring the wrong thing. On a multi-core
// host cases/sec scales with the fleet; on a 1-CPU container all workers
// share the core and the signal is that coordination overhead stays small
// (ratio ~1x, not <<1x).
type bench4Report struct {
	Bench      string `json:"bench"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_max_procs"`
	GoVersion  string `json:"go_version"`

	GridCells  int         `json:"grid_cells"`
	SingleNode bench4Row   `json:"single_node"`
	Fleet      []bench4Row `json:"fleet"`
	Note       string      `json:"note"`
}

type bench4Row struct {
	Workers       int     `json:"workers,omitempty"`
	WallSeconds   float64 `json:"wall_seconds"`
	CasesPerSec   float64 `json:"cases_per_sec"`
	VsSingleNode  float64 `json:"throughput_vs_single_node"`
	ByteIdentical bool    `json:"report_byte_identical"`
}

// bench4Spec is an 8-cell grid (4 cache points x 2 loaders) sized so each
// cell simulates for a few hundred ms — long enough that scatter/gather
// overhead is honest, short enough for CI.
const bench4Spec = `{"spec": {
	"name": "bench4",
	"title": "coordinator throughput grid",
	"row_header": ["cache"],
	"base": {"model": "resnet18", "dataset": "imagenet-1k", "scale": 0.05, "epochs": 2, "seed": 1, "batch": 16, "loader": "coordl"},
	"rows": {"param": "cache_fraction", "values": [0.2, 0.35, 0.5, 0.65]},
	"sweep": {"param": "loader", "values": ["dali-shuffle", "coordl"]},
	"columns": [{"label": "dali s", "metric": "epoch_s", "of": "dali-shuffle"}, {"label": "coordl s", "metric": "epoch_s", "of": "coordl"}]
}}`

const bench4Cells = 8

func runBench4(out string) int {
	rep := &bench4Report{
		Bench:      "stallserved coordinator: case throughput at 1/2/4 fleet workers vs single-node",
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		GridCells:  bench4Cells,
		Note: "fleet workers are in-process httptest servers sharing this host's cores; " +
			"cases_per_sec scales with physical cores, so on a 1-CPU host the expected ratio is ~1x " +
			"(the signal there is scatter/gather overhead, not parallel speedup)",
	}

	single, singleReport, err := bench4SingleNode()
	if err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: bench4: %v\n", err)
		return 1
	}
	single.VsSingleNode = 1
	single.ByteIdentical = true
	rep.SingleNode = single
	fmt.Fprintf(os.Stderr, "stallbench: bench4: single-node    %6.2f cases/s (%.2fs)\n",
		single.CasesPerSec, single.WallSeconds)

	for _, n := range []int{1, 2, 4} {
		row, err := bench4Fleet(n, singleReport)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stallbench: bench4: fleet %d: %v\n", n, err)
			return 1
		}
		row.VsSingleNode = row.CasesPerSec / single.CasesPerSec
		rep.Fleet = append(rep.Fleet, row)
		fmt.Fprintf(os.Stderr, "stallbench: bench4: fleet x%d       %6.2f cases/s (%.2fs, %.2fx single-node)\n",
			n, row.CasesPerSec, row.WallSeconds, row.VsSingleNode)
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: bench4: %v\n", err)
		return 1
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "stallbench: bench4: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "stallbench: wrote %s\n", out)
	return 0
}

// bench4Run submits the grid to base, waits, and returns the wall time and
// the completed job's report JSON.
func bench4Run(base string) (float64, string, error) {
	start := time.Now()
	id, err := bench3Submit(base, bench4Spec)
	if err != nil {
		return 0, "", err
	}
	status, err := bench3Wait(base, id)
	if err != nil {
		return 0, "", err
	}
	if status != "completed" {
		return 0, "", fmt.Errorf("grid job %s ended %s", id, status)
	}
	wall := time.Since(start).Seconds()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", err
	}
	var v struct {
		Report json.RawMessage `json:"report"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		return 0, "", err
	}
	return wall, string(v.Report), nil
}

func bench4SingleNode() (bench4Row, string, error) {
	srv, ts, err := bench3Server(2)
	if err != nil {
		return bench4Row{}, "", err
	}
	defer srv.Close()
	defer ts.Close()
	wall, report, err := bench4Run(ts.URL)
	if err != nil {
		return bench4Row{}, "", err
	}
	return bench4Row{WallSeconds: wall, CasesPerSec: bench4Cells / wall}, report, nil
}

func bench4Fleet(n int, want string) (bench4Row, error) {
	var urls []string
	for i := 0; i < n; i++ {
		srv, ts, err := bench3Server(2)
		if err != nil {
			return bench4Row{}, err
		}
		defer srv.Close()
		defer ts.Close()
		urls = append(urls, ts.URL)
	}
	coord, err := server.New(server.Config{Workers: 2, QueueDepth: 64, WorkerURLs: urls})
	if err != nil {
		return bench4Row{}, err
	}
	defer coord.Close()
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()

	wall, report, err := bench4Run(cts.URL)
	if err != nil {
		return bench4Row{}, err
	}
	if report != want {
		return bench4Row{}, fmt.Errorf("fleet x%d report differs from single-node", n)
	}
	return bench4Row{
		Workers: n, WallSeconds: wall,
		CasesPerSec: bench4Cells / wall, ByteIdentical: true,
	}, nil
}
