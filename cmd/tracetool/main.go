// Command tracetool validates and canonicalizes the Chrome trace-event
// JSON files written by `stallserved -trace-dir`, GET /v1/jobs/{id}/trace
// and `runsuite -trace`:
//
//	tracetool -validate trace.json    # strict schema check; span count on stderr
//	tracetool -topology trace.json    # canonical span tree on stdout
//
// -topology strips timestamps, span IDs and volatile attribute values
// (worker URLs, job IDs) and sorts sibling subtrees, so two runs of the
// same workload print byte-identical trees — the form the tracecheck test
// and `make tracesmoke` compare against committed goldens.
package main

import (
	"flag"
	"fmt"
	"os"

	"datastall/internal/obs"
)

func main() { os.Exit(run()) }

func run() int {
	validate := flag.Bool("validate", false, "strictly schema-check the trace file")
	topology := flag.Bool("topology", false, "print the canonical (timestamp-stripped) span tree on stdout")
	flag.Parse()
	if flag.NArg() != 1 || (!*validate && !*topology) {
		fmt.Fprintln(os.Stderr, "usage: tracetool [-validate] [-topology] trace.json")
		return 2
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracetool: %v\n", err)
		return 1
	}
	recs, err := obs.ParseChrome(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracetool: %s: %v\n", path, err)
		return 1
	}
	if *validate {
		fmt.Fprintf(os.Stderr, "tracetool: %s: valid (%d spans)\n", path, len(recs))
	}
	if *topology {
		os.Stdout.Write(obs.TopologyFromRecords(recs))
	}
	return 0
}
