// Command stallserved serves datastall simulations as an HTTP job service:
// clients POST declarative scenario specs (or single training jobs) to
// /v1/jobs, poll or stream their progress, and cancel them; built-in paper
// specs are runnable by name.
//
//	stallserved -addr :8080
//	stallserved -addr :8080 -workers 4 -queue 128 -persist ./jobs
//
//	curl -X POST localhost:8080/v1/jobs -d '{"spec_name": "fig5"}'
//	curl localhost:8080/v1/jobs/job-000001
//	curl -N localhost:8080/v1/jobs/job-000001/events
//	curl -X DELETE localhost:8080/v1/jobs/job-000001
//	curl localhost:8080/metrics
//
// With -coordinator, the instance executes nothing locally: it shards each
// spec's case grid across a fleet of ordinary stallserved workers (and
// forwards single jobs whole), gathering a result byte-identical to a
// single-node run. -workers then takes the fleet's URLs:
//
//	stallserved -addr :8081 &
//	stallserved -addr :8082 &
//	stallserved -addr :8080 -coordinator -workers http://localhost:8081,http://localhost:8082
//
// SIGTERM/SIGINT begin a graceful drain: the listener stops accepting, new
// submissions get 503, and queued/running jobs are given -drain to finish
// before being cancelled through their contexts. Completed jobs snapshot to
// -persist (when set) and are served again after a restart.
//
// With -wal, the whole job lifecycle is logged to a crash-safe write-ahead
// log: after a kill -9, a restart replays the clean prefix, serves finished
// jobs, and resumes interrupted sweeps from their last logged case — the
// assembled report is byte-identical to an uninterrupted run. -fsync picks
// the durability point (always/interval/never); the log compacts into a
// checkpoint every -wal-compact terminal jobs.
//
//	stallserved -addr :8080 -wal ./wal -fsync always
//
// With -memo, every case result is memoized in a content-addressed,
// crash-atomically written cache directory (the same layout `runsuite
// -memo` uses, so the CLI and the daemon can share one directory):
// resubmitting a spec whose cases were already simulated serves every cell
// from the cache, byte-identical, re-simulating nothing.
//
//	stallserved -addr :8080 -memo ./memocache
//
// Every job carries an end-to-end trace, served as Chrome trace-event JSON
// (Perfetto-viewable) at GET /v1/jobs/{id}/trace and — with -trace-dir —
// dumped to disk when the job finishes. Logs are structured (log/slog) with
// job_id/trace_id/case_key fields, /metrics adds latency histograms, and
// -debug-addr serves net/http/pprof on a separate listener so profiling is
// never exposed on the public API address:
//
//	stallserved -addr :8080 -trace-dir ./traces -debug-addr localhost:6060
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"datastall/internal/server"
	"datastall/internal/wal"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.String("workers", "", "worker pool size (default one per CPU); with -coordinator, comma-separated worker base URLs instead")
	coordinator := flag.Bool("coordinator", false, "run as a fleet coordinator: shard specs across the stallserved workers named by -workers")
	inflight := flag.Int("inflight", 4, "coordinator: concurrently dispatched cases per worker")
	retries := flag.Int("retries", 3, "coordinator: re-route attempts per case beyond the first")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "coordinator: first re-route delay, doubling per attempt")
	tenantQuota := flag.Int("tenant-quota", 0, "max queued+running jobs per X-Tenant header (0 = unlimited)")
	queue := flag.Int("queue", 64, "bounded submission queue depth (full queue rejects with 503)")
	subBuf := flag.Int("subbuf", 256, "per-subscriber event ring size on /events streams")
	persist := flag.String("persist", "", "directory for completed-job JSON snapshots (empty = in-memory only)")
	walDir := flag.String("wal", "", "write-ahead-log directory: crash-safe job lifecycle log with restart resume (empty = off)")
	fsyncMode := flag.String("fsync", "always", "WAL durability: always (fsync per append), interval, or never")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "fsync period under -fsync interval")
	walSegment := flag.Int64("wal-segment", 4<<20, "WAL segment size in bytes before rotation")
	walCompact := flag.Int("wal-compact", 64, "compact the WAL into a checkpoint every N terminal jobs")
	maxRecords := flag.Int("maxrecords", 4096, "finished job records retained in memory (oldest evicted beyond this)")
	memoDir := flag.String("memo", "", "content-addressed result cache directory: cases already simulated (by any job, process, or runsuite -memo) are served byte-identically from the cache (empty = off)")
	memoMax := flag.Int64("memo-max-bytes", 0, "memo cache budget in bytes, enforced on disk and in memory, at insert and at startup (0 = 256 MiB)")
	drain := flag.Duration("drain", 30*time.Second, "graceful drain budget on SIGTERM before in-flight jobs are cancelled")
	traceDir := flag.String("trace-dir", "", "directory for per-job Chrome trace-event JSON dumps, written when each job finishes (empty = traces served over HTTP only)")
	debugAddr := flag.String("debug-addr", "", "separate listen address for net/http/pprof profiling endpoints (empty = off)")
	quiet := flag.Bool("q", false, "log warnings and errors only")
	flag.Parse()

	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	fsyncPolicy, err := wal.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		logger.Error(err.Error())
		return 2
	}
	if point := wal.ArmCrashFromEnv(); point != "" {
		logger.Warn("wal: crash injection armed (STALLWAL_CRASH)", "point", point)
	}

	cfg := server.Config{
		QueueDepth: *queue, SubscriberBuffer: *subBuf,
		MaxRecords: *maxRecords, PersistDir: *persist, Log: logger,
		TenantQuota: *tenantQuota, TraceDir: *traceDir,
		WALDir: *walDir, WALFsync: fsyncPolicy, WALFsyncInterval: *fsyncInterval,
		WALSegmentBytes: *walSegment, WALCompactEvery: *walCompact,
		MemoDir: *memoDir, MemoMaxBytes: *memoMax,
	}
	if *coordinator {
		if *workers == "" {
			logger.Error("-coordinator needs -workers http://w1,http://w2,...")
			return 2
		}
		cfg.WorkerURLs = strings.Split(*workers, ",")
		cfg.WorkerInflight = *inflight
		cfg.CaseRetries = *retries
		cfg.RetryBackoff = *backoff
		probeFleet(logger, cfg.WorkerURLs)
	} else if *workers != "" {
		n, err := strconv.Atoi(*workers)
		if err != nil {
			logger.Error("-workers wants a pool size (or add -coordinator for worker URLs)", "workers", *workers)
			return 2
		}
		cfg.Workers = n
	}

	srv, err := server.New(cfg)
	if err != nil {
		logger.Error(err.Error())
		return 1
	}

	if *debugAddr != "" {
		// pprof on its own listener so profiling endpoints are never exposed
		// on the public API address.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				logger.Warn("pprof listener failed", "error", err)
			}
		}()
	}

	// No global Write/ReadTimeout — /events streams are long-lived — but
	// slow-header and idle connections must not pin goroutines forever.
	httpSrv := &http.Server{
		Addr: *addr, Handler: srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	if *coordinator {
		logger.Info("listening (coordinator)", "addr", *addr, "fleet_workers", len(cfg.WorkerURLs), "queue", *queue)
	} else {
		logger.Info("listening", "addr", *addr, "workers", srv.Workers(), "queue", *queue)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Error(err.Error())
		srv.Close()
		return 1
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String(), "budget", drain.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop the listener first so no new work arrives, then drain the
	// scheduler; both share the drain budget.
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Warn("http shutdown", "error", err)
	}
	if srv.Drain(ctx) {
		logger.Info("drained cleanly")
	} else {
		logger.Warn("drain budget exhausted; in-flight jobs cancelled")
	}
	fmt.Fprintln(os.Stderr, "stallserved: bye")
	return 0
}

// probeFleet checks each worker's /healthz once at boot — purely advisory:
// an unreachable worker is reported and left to the coordinator's
// background probe, which keeps retrying and routes around it meanwhile.
func probeFleet(logger *slog.Logger, urls []string) {
	client := &http.Client{Timeout: 2 * time.Second}
	for _, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		resp, err := client.Get(u + "/healthz")
		if err != nil {
			logger.Warn("fleet: worker unreachable; will keep probing", "worker", u, "error", err)
			continue
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			logger.Warn("fleet: worker /healthz not OK; will keep probing", "worker", u, "status", resp.StatusCode)
			continue
		}
		logger.Info("fleet: worker healthy", "worker", u)
	}
}
