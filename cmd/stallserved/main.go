// Command stallserved serves datastall simulations as an HTTP job service:
// clients POST declarative scenario specs (or single training jobs) to
// /v1/jobs, poll or stream their progress, and cancel them; built-in paper
// specs are runnable by name.
//
//	stallserved -addr :8080
//	stallserved -addr :8080 -workers 4 -queue 128 -persist ./jobs
//
//	curl -X POST localhost:8080/v1/jobs -d '{"spec_name": "fig5"}'
//	curl localhost:8080/v1/jobs/job-000001
//	curl -N localhost:8080/v1/jobs/job-000001/events
//	curl -X DELETE localhost:8080/v1/jobs/job-000001
//	curl localhost:8080/metrics
//
// With -coordinator, the instance executes nothing locally: it shards each
// spec's case grid across a fleet of ordinary stallserved workers (and
// forwards single jobs whole), gathering a result byte-identical to a
// single-node run. -workers then takes the fleet's URLs:
//
//	stallserved -addr :8081 &
//	stallserved -addr :8082 &
//	stallserved -addr :8080 -coordinator -workers http://localhost:8081,http://localhost:8082
//
// SIGTERM/SIGINT begin a graceful drain: the listener stops accepting, new
// submissions get 503, and queued/running jobs are given -drain to finish
// before being cancelled through their contexts. Completed jobs snapshot to
// -persist (when set) and are served again after a restart.
//
// With -wal, the whole job lifecycle is logged to a crash-safe write-ahead
// log: after a kill -9, a restart replays the clean prefix, serves finished
// jobs, and resumes interrupted sweeps from their last logged case — the
// assembled report is byte-identical to an uninterrupted run. -fsync picks
// the durability point (always/interval/never); the log compacts into a
// checkpoint every -wal-compact terminal jobs.
//
//	stallserved -addr :8080 -wal ./wal -fsync always
//
// With -memo, every case result is memoized in a content-addressed,
// crash-atomically written cache directory (the same layout `runsuite
// -memo` uses, so the CLI and the daemon can share one directory):
// resubmitting a spec whose cases were already simulated serves every cell
// from the cache, byte-identical, re-simulating nothing.
//
//	stallserved -addr :8080 -memo ./memocache
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"datastall/internal/server"
	"datastall/internal/wal"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.String("workers", "", "worker pool size (default one per CPU); with -coordinator, comma-separated worker base URLs instead")
	coordinator := flag.Bool("coordinator", false, "run as a fleet coordinator: shard specs across the stallserved workers named by -workers")
	inflight := flag.Int("inflight", 4, "coordinator: concurrently dispatched cases per worker")
	retries := flag.Int("retries", 3, "coordinator: re-route attempts per case beyond the first")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "coordinator: first re-route delay, doubling per attempt")
	tenantQuota := flag.Int("tenant-quota", 0, "max queued+running jobs per X-Tenant header (0 = unlimited)")
	queue := flag.Int("queue", 64, "bounded submission queue depth (full queue rejects with 503)")
	subBuf := flag.Int("subbuf", 256, "per-subscriber event ring size on /events streams")
	persist := flag.String("persist", "", "directory for completed-job JSON snapshots (empty = in-memory only)")
	walDir := flag.String("wal", "", "write-ahead-log directory: crash-safe job lifecycle log with restart resume (empty = off)")
	fsyncMode := flag.String("fsync", "always", "WAL durability: always (fsync per append), interval, or never")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "fsync period under -fsync interval")
	walSegment := flag.Int64("wal-segment", 4<<20, "WAL segment size in bytes before rotation")
	walCompact := flag.Int("wal-compact", 64, "compact the WAL into a checkpoint every N terminal jobs")
	maxRecords := flag.Int("maxrecords", 4096, "finished job records retained in memory (oldest evicted beyond this)")
	memoDir := flag.String("memo", "", "content-addressed result cache directory: cases already simulated (by any job, process, or runsuite -memo) are served byte-identically from the cache (empty = off)")
	memoMax := flag.Int64("memo-max-bytes", 0, "memo cache budget in bytes, enforced on disk and in memory, at insert and at startup (0 = 256 MiB)")
	drain := flag.Duration("drain", 30*time.Second, "graceful drain budget on SIGTERM before in-flight jobs are cancelled")
	quiet := flag.Bool("q", false, "suppress per-job transition logging")
	flag.Parse()

	logger := log.New(os.Stderr, "stallserved: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...interface{}) {}
	}

	fsyncPolicy, err := wal.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		logger.Printf("%v", err)
		return 2
	}
	if point := wal.ArmCrashFromEnv(); point != "" {
		logger.Printf("wal: crash injection armed at %q (STALLWAL_CRASH)", point)
	}

	cfg := server.Config{
		QueueDepth: *queue, SubscriberBuffer: *subBuf,
		MaxRecords: *maxRecords, PersistDir: *persist, Logf: logf,
		TenantQuota: *tenantQuota,
		WALDir:      *walDir, WALFsync: fsyncPolicy, WALFsyncInterval: *fsyncInterval,
		WALSegmentBytes: *walSegment, WALCompactEvery: *walCompact,
		MemoDir: *memoDir, MemoMaxBytes: *memoMax,
	}
	if *coordinator {
		if *workers == "" {
			logger.Printf("-coordinator needs -workers http://w1,http://w2,...")
			return 2
		}
		cfg.WorkerURLs = strings.Split(*workers, ",")
		cfg.WorkerInflight = *inflight
		cfg.CaseRetries = *retries
		cfg.RetryBackoff = *backoff
		probeFleet(logger, cfg.WorkerURLs)
	} else if *workers != "" {
		n, err := strconv.Atoi(*workers)
		if err != nil {
			logger.Printf("-workers %q: want a pool size (or add -coordinator for worker URLs)", *workers)
			return 2
		}
		cfg.Workers = n
	}

	srv, err := server.New(cfg)
	if err != nil {
		logger.Printf("%v", err)
		return 1
	}

	// No global Write/ReadTimeout — /events streams are long-lived — but
	// slow-header and idle connections must not pin goroutines forever.
	httpSrv := &http.Server{
		Addr: *addr, Handler: srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	if *coordinator {
		logger.Printf("listening on %s (coordinator, %d fleet workers, queue %d)", *addr, len(cfg.WorkerURLs), *queue)
	} else {
		logger.Printf("listening on %s (%d workers, queue %d)", *addr, srv.Workers(), *queue)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Printf("%v", err)
		srv.Close()
		return 1
	case sig := <-sigc:
		logger.Printf("%v: draining (budget %s)", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop the listener first so no new work arrives, then drain the
	// scheduler; both share the drain budget.
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if srv.Drain(ctx) {
		logger.Printf("drained cleanly")
	} else {
		logger.Printf("drain budget exhausted; in-flight jobs cancelled")
	}
	fmt.Fprintln(os.Stderr, "stallserved: bye")
	return 0
}

// probeFleet checks each worker's /healthz once at boot — purely advisory:
// an unreachable worker is reported and left to the coordinator's
// background probe, which keeps retrying and routes around it meanwhile.
func probeFleet(logger *log.Logger, urls []string) {
	client := &http.Client{Timeout: 2 * time.Second}
	for _, u := range urls {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		resp, err := client.Get(u + "/healthz")
		if err != nil {
			logger.Printf("fleet: worker %s unreachable (%v); will keep probing", u, err)
			continue
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			logger.Printf("fleet: worker %s /healthz: HTTP %d; will keep probing", u, resp.StatusCode)
			continue
		}
		logger.Printf("fleet: worker %s healthy", u)
	}
}
