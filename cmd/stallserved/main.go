// Command stallserved serves datastall simulations as an HTTP job service:
// clients POST declarative scenario specs (or single training jobs) to
// /v1/jobs, poll or stream their progress, and cancel them; built-in paper
// specs are runnable by name.
//
//	stallserved -addr :8080
//	stallserved -addr :8080 -workers 4 -queue 128 -persist ./jobs
//
//	curl -X POST localhost:8080/v1/jobs -d '{"spec_name": "fig5"}'
//	curl localhost:8080/v1/jobs/job-000001
//	curl -N localhost:8080/v1/jobs/job-000001/events
//	curl -X DELETE localhost:8080/v1/jobs/job-000001
//	curl localhost:8080/metrics
//
// SIGTERM/SIGINT begin a graceful drain: the listener stops accepting, new
// submissions get 503, and queued/running jobs are given -drain to finish
// before being cancelled through their contexts. Completed jobs snapshot to
// -persist (when set) and are served again after a restart.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"datastall/internal/server"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "job worker pool size (0 = one per CPU)")
	queue := flag.Int("queue", 64, "bounded submission queue depth (full queue rejects with 503)")
	subBuf := flag.Int("subbuf", 256, "per-subscriber event ring size on /events streams")
	persist := flag.String("persist", "", "directory for completed-job JSON snapshots (empty = in-memory only)")
	maxRecords := flag.Int("maxrecords", 4096, "finished job records retained in memory (oldest evicted beyond this)")
	drain := flag.Duration("drain", 30*time.Second, "graceful drain budget on SIGTERM before in-flight jobs are cancelled")
	quiet := flag.Bool("q", false, "suppress per-job transition logging")
	flag.Parse()

	logger := log.New(os.Stderr, "stallserved: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...interface{}) {}
	}

	srv, err := server.New(server.Config{
		Workers: *workers, QueueDepth: *queue, SubscriberBuffer: *subBuf,
		MaxRecords: *maxRecords, PersistDir: *persist, Logf: logf,
	})
	if err != nil {
		logger.Printf("%v", err)
		return 1
	}

	// No global Write/ReadTimeout — /events streams are long-lived — but
	// slow-header and idle connections must not pin goroutines forever.
	httpSrv := &http.Server{
		Addr: *addr, Handler: srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s (%d workers, queue %d)", *addr, srv.Workers(), *queue)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Printf("%v", err)
		srv.Close()
		return 1
	case sig := <-sigc:
		logger.Printf("%v: draining (budget %s)", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop the listener first so no new work arrives, then drain the
	// scheduler; both share the drain budget.
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if srv.Drain(ctx) {
		logger.Printf("drained cleanly")
	} else {
		logger.Printf("drain budget exhausted; in-flight jobs cancelled")
	}
	fmt.Fprintln(os.Stderr, "stallserved: bye")
	return 0
}
