//go:build race

package datastall_test

// raceEnabled reports whether the race detector instruments this build;
// throughput assertions skip under it (its runtime serializes goroutines
// through internal locks, distorting contention measurements).
const raceEnabled = true
