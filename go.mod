module datastall

go 1.24
