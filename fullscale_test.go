package datastall_test

import (
	"math"
	"testing"

	"datastall"
)

// TestTable6AtPaperScale reruns the paper's Table 6 on the unscaled 645 GB
// OpenImages dataset (2.25M items). The MinIO row reproduces exactly: the
// paper reports 225 GB/epoch of disk I/O; the simulation reads 225.5 GiB.
// The headline "up to 1.8x over DALI-seq" (§5.1) also lands at 1.85x.
// Skipped with -short (takes a few seconds).
func TestTable6AtPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	run := func(l datastall.Loader) *datastall.TrainResult {
		r, err := datastall.Train(datastall.TrainConfig{
			Model: "shufflenetv2", Dataset: "openimages", Loader: l,
			CacheFraction: 0.65, Scale: 1, Epochs: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	coordl := run(datastall.LoaderCoorDL)
	seq := run(datastall.LoaderDALISeq)
	shuffle := run(datastall.LoaderDALIShuffle)

	// Paper Table 6: CoorDL 225 GB/epoch (exact capacity misses).
	if math.Abs(coordl.DiskGiBPerEpoch-225) > 5 {
		t.Errorf("CoorDL disk I/O %.1f GiB/epoch, paper reports 225 GB", coordl.DiskGiBPerEpoch)
	}
	if math.Abs(coordl.CacheHitRate-0.65) > 0.01 {
		t.Errorf("CoorDL hit rate %.3f, want exactly 0.65", coordl.CacheHitRate)
	}
	// Paper §5.1: up to 1.8x over DALI-seq.
	sp := seq.EpochSeconds / coordl.EpochSeconds
	if sp < 1.6 || sp > 2.2 {
		t.Errorf("speedup over DALI-seq %.2f, paper reports up to 1.8", sp)
	}
	// Miss ordering: CoorDL < shuffle <= seq (paper 35/53/66%).
	if !(coordl.DiskGiBPerEpoch < shuffle.DiskGiBPerEpoch &&
		shuffle.DiskGiBPerEpoch <= seq.DiskGiBPerEpoch*1.001) {
		t.Errorf("disk ordering violated: %.0f / %.0f / %.0f GiB",
			coordl.DiskGiBPerEpoch, shuffle.DiskGiBPerEpoch, seq.DiskGiBPerEpoch)
	}
}

// TestFig1PipelineAtPaperScale verifies the calibration anchor end to end:
// a fully cold ResNet18 run on paper-sized ImageNet-1k must be bounded by
// Fig 1's component rates.
func TestFig1PipelineAtPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale run")
	}
	r, err := datastall.Train(datastall.TrainConfig{
		Model: "resnet18", Dataset: "imagenet-1k",
		Loader: datastall.LoaderCoorDL, CacheFraction: 0.35,
		Scale: 1, Epochs: 2, PrepThreadsPerGPU: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fig 1: effective pipeline rate at 35% cache is min(802, 735+GPU
	// prep, 2283) MB/s -> fetch- or prep-bound well below GPU demand.
	if r.StallFraction < 0.4 {
		t.Errorf("stall fraction %.2f; Fig 1's pipeline is heavily stalled", r.StallFraction)
	}
	// Throughput in bytes/s must not exceed the 802 MB/s fetch mix.
	bytesPerSec := r.SamplesPerSecond * 146 * 1024 * 1024 * 1024 / 1_281_167
	if bytesPerSec > 850*1024*1024 {
		t.Errorf("pipeline moved %.0f MB/s, above the Fig 1 fetch bound", bytesPerSec/(1024*1024))
	}
}
