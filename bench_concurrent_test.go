// Concurrency benchmarks for the sharded-cache loader backend. Unlike the
// experiment benchmarks in bench_test.go (which replay the paper through the
// analytic simulator), these measure real goroutine parallelism on the host:
//
//	go test -bench 'MinIOLookup' -cpu 1,2,4,8 .
//	go test -bench PipelineEpoch .
//
// cmd/stallbench -bench runs the same measurements outside the testing
// framework and writes BENCH_1.json (the perf-trajectory seed).
package datastall_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"datastall/internal/cache"
	"datastall/internal/dataset"
	"datastall/internal/loader"
)

const benchItems = 1 << 15

func newSharded(capBytes float64) cache.Cache { return cache.NewShardedMinIO(capBytes, 0) }
func newLocked(capBytes float64) cache.Cache  { return cache.NewLocked(cache.NewMinIO(capBytes)) }

// benchmarkLookup measures Lookup throughput via RunParallel; select the
// goroutine count with -cpu.
func benchmarkLookup(b *testing.B, build func(capBytes float64) cache.Cache) {
	c, ids := loader.BenchCacheWorkload(benchItems, build)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Lookup(ids[(i*7)&(benchItems-1)])
			i++
		}
	})
}

func BenchmarkShardedMinIOLookup(b *testing.B) { benchmarkLookup(b, newSharded) }

// BenchmarkSingleMutexMinIOLookup is the baseline the acceptance criterion
// compares against: the same MinIO policy behind one big mutex.
func BenchmarkSingleMutexMinIOLookup(b *testing.B) { benchmarkLookup(b, newLocked) }

// BenchmarkPipelineEpoch measures steady-state epoch wall time of the
// concurrent fetch->prep pipeline at 1/2/4/8 workers.
func BenchmarkPipelineEpoch(b *testing.B) {
	d := &dataset.Dataset{Name: "bench", NumItems: benchItems, TotalBytes: benchItems * 1024}
	order := dataset.NewRandomSampler(dataset.FullShard(d), 1).EpochOrder(0)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			c := cache.NewShardedMinIO(d.TotalBytes/2, 0)
			loader.MeasureEpochWall(d, c, order, workers, 128) // warmup epoch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := loader.MeasureEpochWall(d, c, order, workers, 128)
				if rep.Fetch.Hits+rep.Fetch.Misses != len(order) {
					b.Fatalf("lost items: %d/%d", rep.Fetch.Hits+rep.Fetch.Misses, len(order))
				}
			}
			b.ReportMetric(float64(len(order))/b.Elapsed().Seconds()*float64(b.N)/1e6, "Mitems/s")
		})
	}
}

// TestShardedLookupSpeedup asserts the PR's perf criterion: at 8 goroutines
// the sharded cache sustains >= 3x the lookup throughput of the
// single-mutex wrapper. Hardware-dependent throughput ratios have no place
// in the default correctness gate (a busy host can miss 3x with no code
// defect), so the assertion is opt-in via DATASTALL_PERF_TESTS=1 — CI's
// dedicated bench job sets it; BENCH_1.json records the trajectory. Lock
// contention cannot manifest without parallel CPUs, so it also skips below
// 4 CPUs and under the race detector.
func TestShardedLookupSpeedup(t *testing.T) {
	if os.Getenv("DATASTALL_PERF_TESTS") == "" {
		t.Skip("perf assertion; set DATASTALL_PERF_TESTS=1 to run")
	}
	if testing.Short() {
		t.Skip("throughput measurement; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race detector serializes goroutines; throughput ratios are meaningless (use `make benchjson`)")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d: need >= 4 CPUs for mutex contention to manifest", runtime.GOMAXPROCS(0))
	}
	const (
		workers = 8
		ops     = 200_000
	)
	sharded, sids := loader.BenchCacheWorkload(benchItems, newSharded)
	locked, lids := loader.BenchCacheWorkload(benchItems, newLocked)
	best := 0.0
	for attempt := 0; attempt < 3; attempt++ {
		s := loader.MeasureLookupThroughput(sharded, sids, workers, ops)
		l := loader.MeasureLookupThroughput(locked, lids, workers, ops)
		if ratio := s / l; ratio > best {
			best = ratio
		}
		if best >= 3 {
			break
		}
	}
	t.Logf("sharded/single-mutex lookup throughput at %d goroutines: %.2fx", workers, best)
	if best < 3 {
		t.Errorf("sharded cache only %.2fx faster than single mutex at %d goroutines, want >= 3x", best, workers)
	}
}
