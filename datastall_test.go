package datastall

import (
	"context"
	"strings"
	"testing"
)

func TestTrainQuickstart(t *testing.T) {
	r, err := Train(TrainConfig{
		Model: "resnet18", Loader: LoaderCoorDL,
		CacheFraction: 0.35, Scale: 0.005,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.EpochSeconds <= 0 || r.SamplesPerSecond <= 0 {
		t.Fatalf("bad result: %+v", r)
	}
	if r.CacheHitRate < 0.30 || r.CacheHitRate > 0.40 {
		t.Fatalf("MinIO hit rate %.2f, want ~0.35", r.CacheHitRate)
	}
	if len(r.Epochs) != 3 {
		t.Fatalf("epochs %d, want 3", len(r.Epochs))
	}
}

func TestTrainDefaults(t *testing.T) {
	// Empty loader/server/dataset resolve to documented defaults.
	r, err := Train(TrainConfig{Model: "resnet50", Scale: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if r.EpochSeconds <= 0 {
		t.Fatal("no result")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(TrainConfig{Model: "nope"}); err == nil {
		t.Fatal("unknown model should fail")
	}
	if _, err := Train(TrainConfig{Model: "resnet18", Dataset: "nope"}); err == nil {
		t.Fatal("unknown dataset should fail")
	}
	if _, err := Train(TrainConfig{Model: "resnet18", Server: "nope"}); err == nil {
		t.Fatal("unknown server should fail")
	}
	if _, err := Train(TrainConfig{Model: "resnet18", Loader: "nope"}); err == nil {
		t.Fatal("unknown loader should fail")
	}
}

func TestCatalogs(t *testing.T) {
	if len(Models()) != 9 {
		t.Fatalf("models: %v", Models())
	}
	if len(Datasets()) != 7 {
		t.Fatalf("datasets: %v", Datasets())
	}
}

func TestCoorDLBeatsBaselinePublicAPI(t *testing.T) {
	run := func(l Loader) float64 {
		r, err := Train(TrainConfig{
			Model: "shufflenetv2", Dataset: "openimages", Loader: l,
			CacheFraction: 0.65, Scale: 0.003,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r.EpochSeconds
	}
	if coordl, dali := run(LoaderCoorDL), run(LoaderDALIShuffle); coordl >= dali {
		t.Fatalf("CoorDL (%.1fs) not faster than DALI (%.1fs)", coordl, dali)
	}
}

func TestDistributedTrain(t *testing.T) {
	r, err := Train(TrainConfig{
		Model: "alexnet", Dataset: "openimages", Loader: LoaderCoorDL,
		Server: ServerHDD1080Ti, NumServers: 2,
		CacheFraction: 0.65, Scale: 0.003, Batch: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Partitioned caching: no storage I/O after the warmup epoch.
	last := r.Epochs[len(r.Epochs)-1]
	if last.DiskGiB > 0.01*r.Epochs[0].DiskGiB {
		t.Fatalf("steady-state disk I/O %.3f GiB, want ~0", last.DiskGiB)
	}
	if r.NetGiBPerEpoch == 0 {
		t.Fatal("no remote-cache traffic recorded")
	}
}

func TestHPSearchPublicAPI(t *testing.T) {
	job := TrainConfig{
		Model: "alexnet", Dataset: "openimages",
		CacheFraction: 0.65, Scale: 0.002, Batch: 128, Epochs: 2,
	}
	base, err := HPSearch(HPSearchConfig{Job: job, NumJobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := HPSearch(HPSearchConfig{Job: job, NumJobs: 8, Coordinated: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.PerJob) != 8 || len(coord.PerJob) != 8 {
		t.Fatal("missing per-job results")
	}
	if coord.PerJob[0].EpochSeconds >= base.PerJob[0].EpochSeconds {
		t.Fatal("coordinated prep should be faster")
	}
	if base.ReadAmplification <= coord.ReadAmplification {
		t.Fatal("baseline should amplify reads")
	}
	if coord.StagingPeakGiB <= 0 || coord.StagingPeakGiB > 5 {
		t.Fatalf("staging peak %.2f GiB out of range", coord.StagingPeakGiB)
	}
}

func TestAnalyzeStallsPublicAPI(t *testing.T) {
	p, err := AnalyzeStalls(TrainConfig{
		Model: "resnet18", Dataset: "imagenet-1k",
		CacheFraction: 0.35, Scale: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(p.GPURate >= p.PrepRate && p.PrepRate >= p.FetchRate) {
		t.Fatalf("phase ordering: G=%.0f P=%.0f F=%.0f", p.GPURate, p.PrepRate, p.FetchRate)
	}
	if p.OptimalCacheFraction <= 0 || p.OptimalCacheFraction > 1 {
		t.Fatalf("optimal cache %.2f", p.OptimalCacheFraction)
	}
	if p.Bottleneck(0.01) != "io" {
		t.Fatalf("tiny cache should be io-bound, got %s", p.Bottleneck(0.01))
	}
	if p.WhatIfGPUFaster(0.35, 2) < p.PredictThroughput(0.35) {
		t.Fatal("faster GPUs must not hurt")
	}
	if p.WhatIfMoreCores(0.35, 2) < p.PredictThroughput(0.35) {
		t.Fatal("more cores must not hurt")
	}
}

func TestRunExperimentPublicAPI(t *testing.T) {
	infos := Experiments()
	if len(infos) < 30 {
		t.Fatalf("only %d experiments registered", len(infos))
	}
	rep, err := RunExperiment(context.Background(), "fig1", ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "GPU") || len(rep.Values) == 0 {
		t.Fatalf("bad report: %+v", rep)
	}
	if _, err := RunExperiment(context.Background(), "nope", ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestTraces(t *testing.T) {
	r, err := Train(TrainConfig{
		Model: "resnet18", Dataset: "openimages", Loader: LoaderCoorDL,
		CacheFraction: 0.5, Scale: 0.002, TraceDiskIO: true, TraceCPU: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.DiskTrace) == 0 || len(r.CPUTrace) == 0 {
		t.Fatal("traces missing")
	}
}
