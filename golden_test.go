package datastall_test

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"testing"

	"datastall"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden suite files from current output")

// TestSuiteGolden is the analytic-backend regression gate: the full
// experiment suite (default scales, seed 1, timings excluded) must be
// byte-identical to the committed golden report and paper tables. Any drift
// — a changed metric, a reordered row, a reworded note — fails here and must
// be a deliberate `go test -run TestSuiteGolden -update .` commit, never an
// accident of a refactor. This is what "runsuite output stays byte-identical"
// means mechanically: the concurrent backend, sharded caches, and every
// future perf PR ride behind this file.
func TestSuiteGolden(t *testing.T) {
	rep, err := datastall.RunSuite(context.Background(), datastall.SuiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed > 0 || rep.Skipped > 0 {
		t.Fatalf("suite not clean: %d failed, %d skipped", rep.Failed, rep.Skipped)
	}

	gotJSON, err := rep.JSON(false) // timings excluded: reproducible bytes
	if err != nil {
		t.Fatal(err)
	}
	gotJSON = append(gotJSON, '\n')

	var tables bytes.Buffer
	for _, e := range rep.Experiments {
		fmt.Fprintf(&tables, "%s\n", e)
	}

	if *updateGolden {
		if err := os.WriteFile("testdata/golden-suite.json", gotJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile("testdata/golden-tables.txt", tables.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden files rewritten")
		return
	}

	compareGolden(t, "testdata/golden-suite.json", gotJSON)
	compareGolden(t, "testdata/golden-tables.txt", tables.Bytes())
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run TestSuiteGolden -update .`): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Report the first differing line, not a 40 KB dump.
	gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			t.Fatalf("%s drifted at line %d:\n  got:  %s\n  want: %s\n(rerun with -update if intentional)",
				path, i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("%s drifted: got %d lines, want %d (rerun with -update if intentional)", path, len(gl), len(wl))
}
